//! On-disk summary artifacts: the warm-restart persistence codec.
//!
//! A [`SummaryArtifact`](crate::service::SummaryArtifact) is exactly the
//! paper's *build once, serve many times* product, so the service can
//! write each one to `<persist-dir>/<fingerprint>-<kind>.sum` and a
//! restarted server can serve its first `SUMMARIZE` without rebuilding.
//! The codec must round-trip the artifact **byte-identically** (the
//! served body is pinned to the CLI's `--out` file) and degrade to a
//! normal cache miss on *any* damage — a corrupt artifact must never
//! panic, error out to a client, or resurrect a stale body.
//!
//! Layout (integers little-endian, varints LEB128):
//!
//! ```text
//! magic  "RDFSUMA1"                        8 bytes
//! version        u16  (= 1)
//! kind           u8   (SummaryKind code)
//! fingerprint    2 × u64 (hi, lo)
//! input_triples / summary_nodes / summary_edges / n_data_nodes  varints
//! props:   n varint × { IRI (len varint + UTF-8), triples, subjects,
//!                       objects varints }          (sorted by IRI)
//! classes: n varint × { IRI, instances varint }    (sorted by IRI)
//! summary snapshot: len varint + rdf-store v2 snapshot bytes
//! checksum       u64 (FNV-1a over every preceding byte)
//! ```
//!
//! The summary graph itself rides as an embedded
//! [`rdf_store::snapshot`] v2 blob — which preserves term ids, component
//! insertion order, and minted-term keys, so re-serializing the decoded
//! graph with [`rdf_io::write_graph`] reproduces the original N-Triples
//! bytes exactly. Cardinality figures are keyed by the *input graph's*
//! term ids, which are not stable across restarts by themselves — so
//! they persist as IRI strings and are re-keyed against the live
//! dictionary on load (sound: the probe only fires for the entry whose
//! content fingerprint matches, i.e. for identical content).
//!
//! Everything here is `Option`-shaped on the read side: `None` means
//! "treat as a miss", never an error.

use crate::cardinality::{PropertyCard, SummaryCardinality};
use crate::service::SummaryArtifact;
use crate::summary::SummaryKind;
use rdf_model::{FxHashMap, Term, TermId};
use rdf_store::{snapshot, Fingerprint, TripleStore};

/// Magic header bytes of a persisted summary artifact.
pub const MAGIC: &[u8; 8] = b"RDFSUMA1";

/// Artifact format version.
pub const VERSION: u16 = 1;

/// Every summary kind, for invalidation sweeps over a persist dir.
pub const ALL_KINDS: [SummaryKind; 6] = [
    SummaryKind::Weak,
    SummaryKind::Strong,
    SummaryKind::TypedWeak,
    SummaryKind::TypedStrong,
    SummaryKind::TypeBased,
    SummaryKind::Bisimulation,
];

/// Stable one-byte code for a summary kind.
fn kind_code(kind: SummaryKind) -> u8 {
    match kind {
        SummaryKind::Weak => 0,
        SummaryKind::Strong => 1,
        SummaryKind::TypedWeak => 2,
        SummaryKind::TypedStrong => 3,
        SummaryKind::TypeBased => 4,
        SummaryKind::Bisimulation => 5,
    }
}

/// Lower-cased paper notation — the `<kind>` part of the file name
/// (matches the server protocol's kind tokens).
pub fn kind_token(kind: SummaryKind) -> String {
    kind.notation().to_ascii_lowercase()
}

/// The artifact's file name inside a persist dir:
/// `<fingerprint-hex>-<kind>.sum`.
pub fn artifact_file_name(fingerprint: Fingerprint, kind: SummaryKind) -> String {
    format!("{fingerprint}-{}.sum", kind_token(kind))
}

/// FNV-1a over a byte slice — the checksum trailer's hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Serializes an artifact for `g` — the graph whose dictionary the
/// cardinality figures are keyed by. Returns `None` when a cardinality
/// key does not render as an IRI (cannot happen for artifacts the
/// service builds; checked rather than trusted).
pub fn encode_artifact(artifact: &SummaryArtifact, g: &rdf_model::Graph) -> Option<Vec<u8>> {
    let snap = snapshot::encode(artifact.summary_store.graph()).ok()?;
    let iri_of = |id: TermId| -> Option<&str> { g.dict().decode(id).as_iri() };
    let mut props: Vec<(&str, PropertyCard)> = artifact
        .cardinality
        .iter_properties()
        .map(|(p, card)| iri_of(p).map(|iri| (iri, card)))
        .collect::<Option<_>>()?;
    props.sort_unstable_by_key(|&(iri, _)| iri);
    let mut classes: Vec<(&str, usize)> = artifact
        .cardinality
        .iter_classes()
        .map(|(c, n)| iri_of(c).map(|iri| (iri, n)))
        .collect::<Option<_>>()?;
    classes.sort_unstable_by_key(|&(iri, _)| iri);

    let mut out = Vec::with_capacity(64 + snap.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind_code(artifact.kind));
    out.extend_from_slice(&artifact.fingerprint.hi.to_le_bytes());
    out.extend_from_slice(&artifact.fingerprint.lo.to_le_bytes());
    put_varint(&mut out, artifact.input_triples as u64);
    put_varint(&mut out, artifact.summary_nodes as u64);
    put_varint(&mut out, artifact.summary_edges as u64);
    put_varint(&mut out, artifact.cardinality.n_data_nodes() as u64);
    put_varint(&mut out, props.len() as u64);
    for (iri, card) in props {
        put_str(&mut out, iri);
        put_varint(&mut out, card.triples as u64);
        put_varint(&mut out, card.subjects as u64);
        put_varint(&mut out, card.objects as u64);
    }
    put_varint(&mut out, classes.len() as u64);
    for (iri, n) in classes {
        put_str(&mut out, iri);
        put_varint(&mut out, n as u64);
    }
    put_varint(&mut out, snap.len() as u64);
    out.extend_from_slice(&snap);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Some(out)
}

/// Bounds-checked cursor; any structural problem reads as `None`.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return None;
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(out)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = *self.take(1)?.first()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = self.varint()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }
}

/// Decodes a persisted artifact against the live graph `g`, verifying it
/// matches the expected `(fingerprint, kind)` slot. Any damage — bad
/// magic/version/checksum, truncation, a fingerprint or kind mismatch, a
/// cardinality IRI absent from `g`'s dictionary, a snapshot that fails to
/// decode — returns `None`: the caller treats it as a plain cache miss.
pub fn decode_artifact(
    raw: &[u8],
    g: &rdf_model::Graph,
    fingerprint: Fingerprint,
    kind: SummaryKind,
) -> Option<SummaryArtifact> {
    // Header fits + magic + version + checksum before anything else.
    if raw.len() < 8 + 2 + 1 + 16 + 8 || &raw[..8] != MAGIC {
        return None;
    }
    if u16::from_le_bytes([raw[8], raw[9]]) != VERSION {
        return None;
    }
    let body = &raw[..raw.len() - 8];
    let stored = u64::from_le_bytes(raw[raw.len() - 8..].try_into().ok()?);
    if fnv1a64(body) != stored {
        return None;
    }
    if raw[10] != kind_code(kind) {
        return None;
    }
    let hi = u64::from_le_bytes(raw[11..19].try_into().ok()?);
    let lo = u64::from_le_bytes(raw[19..27].try_into().ok()?);
    if (Fingerprint { hi, lo }) != fingerprint {
        return None;
    }
    let mut r = Reader { buf: body, pos: 27 };
    let input_triples = r.varint()? as usize;
    if input_triples != g.len() {
        return None;
    }
    let summary_nodes = r.varint()? as usize;
    let summary_edges = r.varint()? as usize;
    let n_data_nodes = r.varint()? as usize;
    // Cardinality figures, re-keyed from IRIs to the live dictionary.
    let lookup = |iri: &str| g.dict().lookup(&Term::iri(iri));
    let n_props = r.varint()? as usize;
    if n_props > body.len() {
        return None;
    }
    let mut props: FxHashMap<TermId, PropertyCard> = FxHashMap::default();
    for _ in 0..n_props {
        let iri = r.str()?;
        let card = PropertyCard {
            triples: r.varint()? as usize,
            subjects: r.varint()? as usize,
            objects: r.varint()? as usize,
        };
        props.insert(lookup(iri)?, card);
    }
    let n_classes = r.varint()? as usize;
    if n_classes > body.len() {
        return None;
    }
    let mut classes: FxHashMap<TermId, usize> = FxHashMap::default();
    for _ in 0..n_classes {
        let iri = r.str()?;
        let n = r.varint()? as usize;
        classes.insert(lookup(iri)?, n);
    }
    let snap_len = r.varint()? as usize;
    let snap = r.take(snap_len)?;
    if r.pos != body.len() {
        return None;
    }
    let summary_graph = snapshot::decode_slice(snap).ok()?;
    // Snapshots preserve ids and per-component insertion order, so this
    // re-serialization is byte-identical to the original build's.
    let ntriples = rdf_io::write_graph(&summary_graph);
    Some(SummaryArtifact {
        kind,
        fingerprint,
        ntriples,
        summary_nodes,
        summary_edges,
        input_triples,
        summary_store: TripleStore::new(summary_graph),
        cardinality: SummaryCardinality::from_parts(kind, props, classes, n_data_nodes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::service::SummaryService;

    fn built(kind: SummaryKind) -> (SummaryService, std::sync::Arc<SummaryArtifact>) {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::book_graph());
        let (artifact, _) = svc.summarize("g", kind).unwrap();
        (svc, artifact)
    }

    /// Round-trips an artifact through the codec against its own graph.
    fn roundtrip(kind: SummaryKind) -> (std::sync::Arc<SummaryArtifact>, SummaryArtifact) {
        let svc = SummaryService::new(1);
        let g = fixtures::book_graph();
        svc.load_graph("g", g);
        let (artifact, _) = svc.summarize("g", kind).unwrap();
        // Re-materialize the graph the service holds for decode keying.
        let g = fixtures::book_graph();
        let store = TripleStore::new(g);
        let raw = encode_artifact(&artifact, store.graph()).unwrap();
        let back = decode_artifact(&raw, store.graph(), artifact.fingerprint, kind).unwrap();
        (artifact, back)
    }

    #[test]
    fn artifact_roundtrips_byte_identically() {
        for kind in ALL_KINDS {
            let (original, back) = roundtrip(kind);
            assert_eq!(original.ntriples, back.ntriples, "{kind:?} bytes differ");
            assert_eq!(original.summary_nodes, back.summary_nodes);
            assert_eq!(original.summary_edges, back.summary_edges);
            assert_eq!(original.input_triples, back.input_triples);
            assert_eq!(original.fingerprint, back.fingerprint);
        }
    }

    #[test]
    fn cardinality_figures_survive() {
        let (original, back) = roundtrip(SummaryKind::TypedWeak);
        assert_eq!(
            original.cardinality.n_data_nodes(),
            back.cardinality.n_data_nodes()
        );
        assert_eq!(
            original.cardinality.n_properties(),
            back.cardinality.n_properties()
        );
        let mut seen = 0;
        for (p, card) in original.cardinality.iter_properties() {
            assert_eq!(back.cardinality.property(p), Some(card));
            seen += 1;
        }
        assert!(seen > 0);
        for (c, n) in original.cardinality.iter_classes() {
            assert_eq!(back.cardinality.class_instances(c), Some(n));
        }
    }

    #[test]
    fn mismatched_slot_reads_as_none() {
        let (_svc, artifact) = built(SummaryKind::Weak);
        let store = TripleStore::new(fixtures::book_graph());
        let raw = encode_artifact(&artifact, store.graph()).unwrap();
        // Wrong kind.
        assert!(decode_artifact(
            &raw,
            store.graph(),
            artifact.fingerprint,
            SummaryKind::Strong
        )
        .is_none());
        // Wrong fingerprint.
        let other = Fingerprint {
            hi: artifact.fingerprint.hi ^ 1,
            lo: artifact.fingerprint.lo,
        };
        assert!(decode_artifact(&raw, store.graph(), other, SummaryKind::Weak).is_none());
        // Wrong input graph (different content, different dictionary).
        let other_store = TripleStore::new(fixtures::sample_graph());
        assert!(decode_artifact(
            &raw,
            other_store.graph(),
            artifact.fingerprint,
            SummaryKind::Weak
        )
        .is_none());
    }

    #[test]
    fn damage_reads_as_none_never_panics() {
        let (_svc, artifact) = built(SummaryKind::Weak);
        let store = TripleStore::new(fixtures::book_graph());
        let g = store.graph();
        let raw = encode_artifact(&artifact, g).unwrap();
        let fp = artifact.fingerprint;
        // Empty and truncated files.
        assert!(decode_artifact(&[], g, fp, SummaryKind::Weak).is_none());
        for cut in [1, 8, 11, 27, raw.len() / 2, raw.len() - 1] {
            assert!(
                decode_artifact(&raw[..cut], g, fp, SummaryKind::Weak).is_none(),
                "cut at {cut} accepted"
            );
        }
        // Bit flips anywhere in the body are caught by the checksum.
        for pos in (0..raw.len()).step_by(13) {
            let mut bad = raw.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode_artifact(&bad, g, fp, SummaryKind::Weak).is_none(),
                "flip at {pos} accepted"
            );
        }
        // Wrong version, checksum re-stamped so only the gate fires.
        let mut wrong_ver = raw.clone();
        wrong_ver[8] = 0x7f;
        let n = wrong_ver.len();
        let sum = fnv1a64(&wrong_ver[..n - 8]);
        wrong_ver[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(decode_artifact(&wrong_ver, g, fp, SummaryKind::Weak).is_none());
    }

    #[test]
    fn file_names_are_slot_unique() {
        let fp = Fingerprint { hi: 7, lo: 9 };
        let names: Vec<String> = ALL_KINDS
            .iter()
            .map(|&k| artifact_file_name(fp, k))
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.iter().all(|n| n.ends_with(".sum")));
        assert_eq!(names[0], format!("{fp}-w.sum"));
    }
}
