//! The pre-dense-pipeline summary builders, preserved verbatim as a test
//! oracle.
//!
//! Before the [`crate::context::SummaryContext`] refactor, every builder
//! computed property cliques with per-node `FxHashMap` lookups and built
//! partitions/quotients through hash maps. This module keeps that original
//! logic — hash maps and all — so the golden-equivalence tests can assert
//! that the dense pipeline produces **triple-for-triple and
//! naming-identical** output on every workload. It is deliberately naive
//! and unoptimized; production code should use the [`crate::builder`]
//! entry points (or a [`crate::context::SummaryContext`] directly), never
//! this module.

use crate::cliques::CliqueScope;
use crate::naming::{c_uri, n_uri};
use crate::summary::{Summary, SummaryKind};
use crate::typed::TypedSemantics;
use rdf_model::{FxHashMap, FxHashSet, Graph, Term, TermId, Triple};

/// Clique structure with the original hash-map node assignments.
struct RefCliques {
    source_cliques: Vec<Vec<TermId>>,
    target_cliques: Vec<Vec<TermId>>,
    subject_clique: FxHashMap<TermId, usize>,
    object_clique: FxHashMap<TermId, usize>,
}

impl RefCliques {
    fn compute(g: &Graph, scope: CliqueScope) -> Self {
        use crate::unionfind::UnionFind;
        let typed: FxHashSet<TermId> = match scope {
            CliqueScope::AllNodes => FxHashSet::default(),
            CliqueScope::UntypedOnly => g.typed_resources(),
        };
        let counts = |id: TermId| -> bool {
            match scope {
                CliqueScope::AllNodes => true,
                CliqueScope::UntypedOnly => !typed.contains(&id),
            }
        };
        let mut prop_index: FxHashMap<TermId, usize> = FxHashMap::default();
        let mut props: Vec<TermId> = Vec::new();
        for t in g.data() {
            prop_index.entry(t.p).or_insert_with(|| {
                props.push(t.p);
                props.len() - 1
            });
        }
        let n = props.len();
        let mut src_uf = UnionFind::new(n);
        let mut tgt_uf = UnionFind::new(n);
        let mut subj_repr: FxHashMap<TermId, usize> = FxHashMap::default();
        let mut obj_repr: FxHashMap<TermId, usize> = FxHashMap::default();
        for t in g.data() {
            let pi = prop_index[&t.p];
            if counts(t.s) {
                match subj_repr.get(&t.s) {
                    Some(&q) => {
                        src_uf.union(pi, q);
                    }
                    None => {
                        subj_repr.insert(t.s, pi);
                    }
                }
            }
            if counts(t.o) {
                match obj_repr.get(&t.o) {
                    Some(&q) => {
                        tgt_uf.union(pi, q);
                    }
                    None => {
                        obj_repr.insert(t.o, pi);
                    }
                }
            }
        }
        let (src_assign, n_src) = src_uf.dense_components();
        let (tgt_assign, n_tgt) = tgt_uf.dense_components();
        let mut source_cliques: Vec<Vec<TermId>> = vec![Vec::new(); n_src];
        let mut target_cliques: Vec<Vec<TermId>> = vec![Vec::new(); n_tgt];
        for (i, &p) in props.iter().enumerate() {
            source_cliques[src_assign[i]].push(p);
            target_cliques[tgt_assign[i]].push(p);
        }
        for c in source_cliques.iter_mut().chain(target_cliques.iter_mut()) {
            c.sort_unstable();
        }
        RefCliques {
            source_cliques,
            target_cliques,
            subject_clique: subj_repr
                .into_iter()
                .map(|(node, pi)| (node, src_assign[pi]))
                .collect(),
            object_clique: obj_repr
                .into_iter()
                .map(|(node, pi)| (node, tgt_assign[pi]))
                .collect(),
        }
    }

    fn sc(&self, node: TermId) -> Option<usize> {
        self.subject_clique.get(&node).copied()
    }

    fn tc(&self, node: TermId) -> Option<usize> {
        self.object_clique.get(&node).copied()
    }
}

/// The original hash-map partition.
struct RefPartition {
    class_of: FxHashMap<TermId, usize>,
    classes: Vec<Vec<TermId>>,
}

impl RefPartition {
    fn group_by<K: std::hash::Hash + Eq>(
        nodes: &[TermId],
        mut key: impl FnMut(TermId) -> K,
    ) -> Self {
        let mut key_class: FxHashMap<K, usize> = FxHashMap::default();
        let mut class_of = FxHashMap::default();
        let mut classes: Vec<Vec<TermId>> = Vec::new();
        for &n in nodes {
            let k = key(n);
            let class = *key_class.entry(k).or_insert_with(|| {
                classes.push(Vec::new());
                classes.len() - 1
            });
            classes[class].push(n);
            class_of.insert(n, class);
        }
        RefPartition { class_of, classes }
    }
}

fn ref_data_nodes_ordered(g: &Graph) -> Vec<TermId> {
    let mut seen: FxHashMap<TermId, ()> = FxHashMap::default();
    let mut out = Vec::new();
    let push = |id: TermId, seen: &mut FxHashMap<TermId, ()>, out: &mut Vec<TermId>| {
        if seen.insert(id, ()).is_none() {
            out.push(id);
        }
    };
    for t in g.data() {
        push(t.s, &mut seen, &mut out);
        push(t.o, &mut seen, &mut out);
    }
    for t in g.types() {
        push(t.s, &mut seen, &mut out);
    }
    out
}

fn ref_weak_partition(cliques: &RefCliques, nodes: &[TermId]) -> RefPartition {
    use crate::unionfind::UnionFind;
    let ns = cliques.source_cliques.len();
    let nt = cliques.target_cliques.len();
    let mut uf = UnionFind::new(ns + nt + 1);
    for &n in nodes {
        if let (Some(tc), Some(sc)) = (cliques.tc(n), cliques.sc(n)) {
            uf.union(sc, ns + tc);
        }
    }
    let tau = ns + nt;
    RefPartition::group_by(nodes, |n| match (cliques.sc(n), cliques.tc(n)) {
        (Some(sc), _) => uf.find(sc),
        (None, Some(tc)) => uf.find(ns + tc),
        (None, None) => tau,
    })
}

fn ref_strong_partition(cliques: &RefCliques, nodes: &[TermId]) -> RefPartition {
    RefPartition::group_by(nodes, |n| (cliques.tc(n), cliques.sc(n)))
}

fn ref_class_sets(g: &Graph) -> FxHashMap<TermId, Vec<TermId>> {
    let mut sets: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    for t in g.types() {
        let v = sets.entry(t.s).or_default();
        if !v.contains(&t.o) {
            v.push(t.o);
        }
    }
    for v in sets.values_mut() {
        v.sort_unstable();
    }
    sets
}

/// The union of target/source clique property sets over a class.
fn ref_class_property_sets(cliques: &RefCliques, members: &[TermId]) -> (Vec<TermId>, Vec<TermId>) {
    let mut tc_ids: Vec<usize> = members.iter().filter_map(|&n| cliques.tc(n)).collect();
    let mut sc_ids: Vec<usize> = members.iter().filter_map(|&n| cliques.sc(n)).collect();
    tc_ids.sort_unstable();
    tc_ids.dedup();
    sc_ids.sort_unstable();
    sc_ids.dedup();
    let mut tc_props: Vec<TermId> = tc_ids
        .into_iter()
        .flat_map(|i| cliques.target_cliques[i].iter().copied())
        .collect();
    let mut sc_props: Vec<TermId> = sc_ids
        .into_iter()
        .flat_map(|i| cliques.source_cliques[i].iter().copied())
        .collect();
    tc_props.sort_unstable();
    tc_props.dedup();
    sc_props.sort_unstable();
    sc_props.dedup();
    (tc_props, sc_props)
}

/// The original hash-map quotient construction.
fn ref_quotient(
    g: &Graph,
    kind: SummaryKind,
    partition: &RefPartition,
    mut class_uri: impl FnMut(usize, &[TermId]) -> String,
) -> Summary {
    let mut h = Graph::new();
    let mut class_node: Vec<TermId> = Vec::with_capacity(partition.classes.len());
    for (i, members) in partition.classes.iter().enumerate() {
        let uri = class_uri(i, members);
        class_node.push(h.dict_mut().encode(Term::iri(uri)));
    }
    let mut xfer: FxHashMap<TermId, TermId> = FxHashMap::default();
    let mut transfer = |id: TermId, g: &Graph, h: &mut Graph| -> TermId {
        if let Some(&cached) = xfer.get(&id) {
            return cached;
        }
        let hid = h.dict_mut().encode(g.dict().decode(id).clone());
        xfer.insert(id, hid);
        hid
    };
    let mut node_map: FxHashMap<TermId, TermId> = FxHashMap::default();
    for (&n, &c) in &partition.class_of {
        node_map.insert(n, class_node[c]);
    }
    for t in g.schema() {
        let s = transfer(t.s, g, &mut h);
        let p = transfer(t.p, g, &mut h);
        let o = transfer(t.o, g, &mut h);
        h.insert_encoded(Triple::new(s, p, o));
    }
    for t in g.data() {
        let s = node_map[&t.s];
        let p = transfer(t.p, g, &mut h);
        let o = node_map[&t.o];
        h.insert_encoded(Triple::new(s, p, o));
    }
    let tau = h.rdf_type();
    for t in g.types() {
        let s = node_map[&t.s];
        let c = transfer(t.o, g, &mut h);
        h.insert_encoded(Triple::new(s, tau, c));
    }
    Summary::new(kind, h, node_map)
}

fn ref_weak(g: &Graph) -> Summary {
    let cliques = RefCliques::compute(g, CliqueScope::AllNodes);
    let nodes = ref_data_nodes_ordered(g);
    let partition = ref_weak_partition(&cliques, &nodes);
    ref_quotient(g, SummaryKind::Weak, &partition, |_, members| {
        let (tc, sc) = ref_class_property_sets(&cliques, members);
        n_uri(g.dict(), &tc, &sc)
    })
}

fn ref_strong(g: &Graph) -> Summary {
    let cliques = RefCliques::compute(g, CliqueScope::AllNodes);
    let nodes = ref_data_nodes_ordered(g);
    let partition = ref_strong_partition(&cliques, &nodes);
    ref_quotient(g, SummaryKind::Strong, &partition, |_, members| {
        let (tc, sc) = (cliques.tc(members[0]), cliques.sc(members[0]));
        let tc_props = tc
            .map(|i| cliques.target_cliques[i].to_vec())
            .unwrap_or_default();
        let sc_props = sc
            .map(|i| cliques.source_cliques[i].to_vec())
            .unwrap_or_default();
        n_uri(g.dict(), &tc_props, &sc_props)
    })
}

fn ref_type_based(g: &Graph) -> Summary {
    let sets = ref_class_sets(g);
    let nodes = ref_data_nodes_ordered(g);
    #[derive(Hash, PartialEq, Eq)]
    enum Key {
        Typed(Vec<TermId>),
        Untyped(TermId),
    }
    let partition = RefPartition::group_by(&nodes, |n| match sets.get(&n) {
        Some(cs) => Key::Typed(cs.clone()),
        None => Key::Untyped(n),
    });
    let mut fresh = 0usize;
    ref_quotient(
        g,
        SummaryKind::TypeBased,
        &partition,
        |_, members| match sets.get(&members[0]) {
            Some(cs) => c_uri(g.dict(), cs),
            None => {
                fresh += 1;
                format!("{}c?fresh={}", crate::naming::SUMMARY_NS, fresh)
            }
        },
    )
}

fn ref_typed(g: &Graph, kind: SummaryKind, semantics: TypedSemantics) -> Summary {
    let scope = match semantics {
        TypedSemantics::ImplementationFigure7 => CliqueScope::UntypedOnly,
        TypedSemantics::LiteralDefinition13 => CliqueScope::AllNodes,
    };
    let strong_naming = kind == SummaryKind::TypedStrong;
    let cliques = RefCliques::compute(g, scope);
    let sets = ref_class_sets(g);
    let nodes = ref_data_nodes_ordered(g);
    let untyped: Vec<TermId> = nodes
        .iter()
        .copied()
        .filter(|n| !sets.contains_key(n))
        .collect();
    let untyped_partition = if strong_naming {
        ref_strong_partition(&cliques, &untyped)
    } else {
        ref_weak_partition(&cliques, &untyped)
    };
    #[derive(Hash, PartialEq, Eq)]
    enum Key {
        Typed(Vec<TermId>),
        Untyped(usize),
    }
    let partition = RefPartition::group_by(&nodes, |n| match sets.get(&n) {
        Some(cs) => Key::Typed(cs.clone()),
        None => Key::Untyped(untyped_partition.class_of[&n]),
    });
    ref_quotient(g, kind, &partition, |_, members| {
        match sets.get(&members[0]) {
            Some(cs) => c_uri(g.dict(), cs),
            None => {
                if strong_naming {
                    let (tc, sc) = (cliques.tc(members[0]), cliques.sc(members[0]));
                    let tc_props = tc
                        .map(|i| cliques.target_cliques[i].to_vec())
                        .unwrap_or_default();
                    let sc_props = sc
                        .map(|i| cliques.source_cliques[i].to_vec())
                        .unwrap_or_default();
                    n_uri(g.dict(), &tc_props, &sc_props)
                } else {
                    let (tc, sc) = ref_class_property_sets(&cliques, members);
                    n_uri(g.dict(), &tc, &sc)
                }
            }
        }
    })
}

/// Builds the summary of `g` the pre-refactor way, with the paper-default
/// typed semantics. Supports the five clique/type summaries; the
/// bisimulation baseline has no reference variant and delegates to
/// [`crate::bisim::bisim_summary`].
pub fn reference_summary(g: &Graph, kind: SummaryKind) -> Summary {
    match kind {
        SummaryKind::Weak => ref_weak(g),
        SummaryKind::Strong => ref_strong(g),
        SummaryKind::TypedWeak => ref_typed(g, kind, TypedSemantics::default()),
        SummaryKind::TypedStrong => ref_typed(g, kind, TypedSemantics::default()),
        SummaryKind::TypeBased => ref_type_based(g),
        SummaryKind::Bisimulation => {
            crate::bisim::bisim_summary(g, crate::bisim::BisimDepth::Bounded(2))
        }
    }
}

/// [`reference_summary`] with explicit typed semantics (affects the typed
/// kinds only).
pub fn reference_summary_with(g: &Graph, kind: SummaryKind, semantics: TypedSemantics) -> Summary {
    match kind {
        SummaryKind::TypedWeak | SummaryKind::TypedStrong => ref_typed(g, kind, semantics),
        _ => reference_summary(g, kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_graph;

    /// The oracle reproduces the paper's headline figures on its own.
    #[test]
    fn reference_figures_on_sample() {
        let g = sample_graph();
        assert_eq!(
            reference_summary(&g, SummaryKind::Weak).graph.data().len(),
            6
        );
        assert_eq!(
            reference_summary(&g, SummaryKind::Strong).n_summary_nodes(),
            9
        );
        assert_eq!(
            reference_summary(&g, SummaryKind::TypedWeak).n_summary_nodes(),
            9
        );
        assert_eq!(
            reference_summary(&g, SummaryKind::TypedStrong).n_summary_nodes(),
            11
        );
        assert_eq!(
            reference_summary(&g, SummaryKind::TypeBased).n_summary_nodes(),
            14
        );
    }
}
