//! Node equivalence relations and the partitions they induce.
//!
//! §3.2 of the paper: from the property cliques we derive **weak**
//! equivalence ≡W (shared non-empty source *or* target clique, closed
//! transitively), **strong** equivalence ≡S (same source clique *and* same
//! target clique), and **type** equivalence ≡T (same non-empty set of
//! classes). Each relation partitions the data nodes of G; the quotient by
//! that partition is the summary.
//!
//! A [`Partition`] stores its node → class assignment as a `Vec`-indexed
//! array keyed by the dense dictionary id (the dense-pipeline layout), so
//! the quotient construction does plain array reads instead of hash
//! lookups.

use crate::cliques::{CliqueId, Cliques};
use rdf_model::{DenseIdMap, FxHashMap, Graph, TermId, NO_DENSE_ID};

/// A partition of a node set: dense class indices plus member lists.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// Term-indexed: node → class index, [`NO_DENSE_ID`] if uncovered.
    class_of: Vec<u32>,
    /// Class index → members (in first-seen order).
    pub classes: Vec<Vec<TermId>>,
}

impl Partition {
    /// Builds a partition from a `node → key` assignment, creating one
    /// class per distinct key (dense, in first-seen order over `nodes`).
    pub fn group_by<K: std::hash::Hash + Eq>(
        nodes: &[TermId],
        mut key: impl FnMut(TermId) -> K,
    ) -> Self {
        let cap = nodes.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        let mut key_class: FxHashMap<K, u32> = FxHashMap::default();
        let mut p = Partition {
            class_of: vec![NO_DENSE_ID; cap],
            classes: Vec::new(),
        };
        for &n in nodes {
            let k = key(n);
            let class = *key_class.entry(k).or_insert_with(|| {
                p.classes.push(Vec::new());
                (p.classes.len() - 1) as u32
            });
            p.classes[class as usize].push(n);
            p.class_of[n.index()] = class;
        }
        p
    }

    /// [`Partition::group_by`] for keys that already live in a small dense
    /// space `0..n_keys`: the key → class table is a flat array, so the
    /// whole construction is hash-free. Class indices are dense in
    /// first-seen order, exactly like `group_by`.
    pub fn group_by_dense(
        nodes: &[TermId],
        n_keys: usize,
        mut key: impl FnMut(TermId) -> usize,
    ) -> Self {
        let cap = nodes.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        let mut key_class = vec![NO_DENSE_ID; n_keys];
        let mut p = Partition {
            class_of: vec![NO_DENSE_ID; cap],
            classes: Vec::new(),
        };
        for &n in nodes {
            let k = key(n);
            let slot = &mut key_class[k];
            if *slot == NO_DENSE_ID {
                *slot = p.classes.len() as u32;
                p.classes.push(Vec::new());
            }
            let class = *slot;
            p.classes[class as usize].push(n);
            p.class_of[n.index()] = class;
        }
        p
    }

    /// The class index of `n`, `None` when `n` is not covered.
    #[inline]
    pub fn class_of(&self, n: TermId) -> Option<usize> {
        match self.class_of.get(n.index()) {
            Some(&c) if c != NO_DENSE_ID => Some(c as usize),
            _ => None,
        }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the partition has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total number of class members (counting duplicates, if any).
    pub fn n_members(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Invariant check: classes are non-empty, each member maps back to
    /// its class, and every covered node appears in some class.
    pub fn check_invariants(&self) -> bool {
        let covered = self.class_of.iter().filter(|&&c| c != NO_DENSE_ID).count();
        self.n_members() == covered
            && self.classes.iter().all(|c| !c.is_empty())
            && self
                .classes
                .iter()
                .enumerate()
                .all(|(i, c)| c.iter().all(|&n| self.class_of(n) == Some(i)))
    }
}

/// The data nodes of `g` in deterministic (first-seen) order: subjects and
/// objects of D_G, then subjects of T_G (§2.1's data-node definition).
///
/// This is the numbering order of [`crate::context::SummaryContext::new`];
/// prefer [`crate::context::SummaryContext::data_nodes`] when a context is
/// already at hand.
pub fn data_nodes_ordered(g: &Graph) -> Vec<TermId> {
    let mut m = DenseIdMap::with_capacity(g.dict().len());
    for t in g.data() {
        m.intern(t.s);
        m.intern(t.o);
    }
    for t in g.types() {
        m.intern(t.s);
    }
    m.into_parts().1
}

/// The clique signature of a node: `(TC(r), SC(r))` as optional clique ids.
pub fn signature(cliques: &Cliques, node: TermId) -> (Option<CliqueId>, Option<CliqueId>) {
    (cliques.tc(node), cliques.sc(node))
}

/// ≡W over `nodes`: the transitive closure of "shares a non-empty source
/// or target clique". Computed as connected components of the bipartite
/// clique graph: node r links SC(r) — TC(r); nodes with both cliques empty
/// form one extra class (the `Nτ` class).
///
/// Passing the untyped data nodes together with untyped-scope cliques
/// yields ≡UW (Definition 13, in the implementation semantics of §6.1).
pub fn weak_partition(cliques: &Cliques, nodes: &[TermId]) -> Partition {
    use crate::unionfind::UnionFind;
    let ns = cliques.source_cliques.len();
    let nt = cliques.target_cliques.len();
    // Items: [0, ns) source cliques, [ns, ns+nt) target cliques,
    // ns+nt = the τ bucket.
    let mut uf = UnionFind::new(ns + nt + 1);
    for &n in nodes {
        if let (Some(tc), Some(sc)) = (cliques.tc(n), cliques.sc(n)) {
            uf.union(sc, ns + tc);
        }
    }
    let tau = ns + nt;
    Partition::group_by_dense(nodes, ns + nt + 1, |n| {
        match (cliques.sc(n), cliques.tc(n)) {
            (Some(sc), _) => uf.find(sc),
            (None, Some(tc)) => uf.find(ns + tc),
            (None, None) => tau,
        }
    })
}

/// ≡S over `nodes`: same `(source clique, target clique)` pair
/// (Definition 15). With untyped nodes and untyped-scope cliques this is
/// ≡US (Definition 16).
pub fn strong_partition(cliques: &Cliques, nodes: &[TermId]) -> Partition {
    // The signature space is (ns+1)·(nt+1) (each side may be ∅). When it
    // is comparably small — the overwhelmingly common case, since clique
    // counts are bounded by the distinct-property count — a flat key table
    // beats hashing every node. Degenerate graphs (thousands of singleton
    // cliques) fall back to the hashed grouping to avoid a quadratic
    // table.
    let ns = cliques.source_cliques.len();
    let nt = cliques.target_cliques.len();
    let n_keys = (ns + 1).saturating_mul(nt + 1);
    if n_keys <= 4 * nodes.len() + 1024 {
        Partition::group_by_dense(nodes, n_keys, |n| {
            let sc = cliques.sc(n).map_or(0, |c| c + 1);
            let tc = cliques.tc(n).map_or(0, |c| c + 1);
            tc * (ns + 1) + sc
        })
    } else {
        Partition::group_by(nodes, |n| signature(cliques, n))
    }
}

/// The class set of every typed resource, sorted (canonical form).
///
/// The dense pipeline interns these once per graph — see
/// [`crate::context::SummaryContext::class_sets`]; this hash-map form is
/// kept for callers without a context (e.g. the bisimulation baseline).
pub fn class_sets(g: &Graph) -> FxHashMap<TermId, Vec<TermId>> {
    let mut sets: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
    for t in g.types() {
        let v = sets.entry(t.s).or_default();
        if !v.contains(&t.o) {
            v.push(t.o);
        }
    }
    for v in sets.values_mut() {
        v.sort_unstable();
    }
    sets
}

/// ≡T over all data nodes (Definition 8): typed nodes grouped by identical
/// class sets; each untyped node is its own class.
pub fn type_partition(g: &Graph) -> Partition {
    let sets = class_sets(g);
    let nodes = data_nodes_ordered(g);
    // Key: Some(class set) for typed, unique key per untyped node.
    #[derive(Hash, PartialEq, Eq)]
    enum Key {
        Typed(Vec<TermId>),
        Untyped(TermId),
    }
    Partition::group_by(&nodes, |n| match sets.get(&n) {
        Some(cs) => Key::Typed(cs.clone()),
        None => Key::Untyped(n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cliques::CliqueScope;
    use crate::fixtures::{exid, sample_graph};

    fn class_ids(p: &Partition, g: &Graph, names: &[&str]) -> Vec<usize> {
        names
            .iter()
            .map(|n| p.class_of(exid(g, n)).unwrap())
            .collect()
    }

    /// §3.2: r1..r5 weakly equivalent; t1..t4; {a1, a2}; {e1, e2}; {c1};
    /// r6 alone (τ class). Six classes total.
    #[test]
    fn weak_classes_of_sample() {
        let g = sample_graph();
        let cq = Cliques::compute(&g, CliqueScope::AllNodes);
        let nodes = data_nodes_ordered(&g);
        let p = weak_partition(&cq, &nodes);
        assert!(p.check_invariants());
        assert_eq!(p.len(), 6);
        let rs = class_ids(&p, &g, &["r1", "r2", "r3", "r4", "r5"]);
        assert!(rs.iter().all(|&c| c == rs[0]));
        let ts = class_ids(&p, &g, &["t1", "t2", "t3", "t4"]);
        assert!(ts.iter().all(|&c| c == ts[0]));
        let aa = class_ids(&p, &g, &["a1", "a2"]);
        assert_eq!(aa[0], aa[1]);
        let ee = class_ids(&p, &g, &["e1", "e2"]);
        assert_eq!(ee[0], ee[1]);
        // All five groups distinct, and r6 separate.
        let mut reps = vec![rs[0], ts[0], aa[0], ee[0]];
        reps.push(p.class_of(exid(&g, "c1")).unwrap());
        reps.push(p.class_of(exid(&g, "r6")).unwrap());
        reps.sort_unstable();
        reps.dedup();
        assert_eq!(reps.len(), 6);
    }

    /// §3.2: "the resources r1, r2, r3, r5 are strongly related to each
    /// other, as well as t1, t2, t3, t4" — and r4 is split off (9 classes).
    #[test]
    fn strong_classes_of_sample() {
        let g = sample_graph();
        let cq = Cliques::compute(&g, CliqueScope::AllNodes);
        let nodes = data_nodes_ordered(&g);
        let p = strong_partition(&cq, &nodes);
        assert!(p.check_invariants());
        // {r1,r2,r3,r5} {r4} {a1} {a2} {t1..t4} {e1} {e2} {c1} {r6}
        assert_eq!(p.len(), 9);
        let rs = class_ids(&p, &g, &["r1", "r2", "r3", "r5"]);
        assert!(rs.iter().all(|&c| c == rs[0]));
        assert_ne!(p.class_of(exid(&g, "r4")).unwrap(), rs[0]);
        assert_ne!(p.class_of(exid(&g, "a1")), p.class_of(exid(&g, "a2")));
        assert_ne!(p.class_of(exid(&g, "e1")), p.class_of(exid(&g, "e2")));
        let ts = class_ids(&p, &g, &["t1", "t2", "t3", "t4"]);
        assert!(ts.iter().all(|&c| c == ts[0]));
    }

    /// Strong refines weak: every strong class is inside one weak class.
    #[test]
    fn strong_refines_weak() {
        let g = sample_graph();
        let cq = Cliques::compute(&g, CliqueScope::AllNodes);
        let nodes = data_nodes_ordered(&g);
        let w = weak_partition(&cq, &nodes);
        let s = strong_partition(&cq, &nodes);
        for class in &s.classes {
            let weak_class = w.class_of(class[0]);
            assert!(class.iter().all(|&n| w.class_of(n) == weak_class));
        }
        assert!(s.len() >= w.len());
    }

    /// ≡T groups r5 and r6 (both typed {Spec}); r1, r2 singletons; every
    /// untyped node is its own class.
    #[test]
    fn type_classes_of_sample() {
        let g = sample_graph();
        let p = type_partition(&g);
        assert!(p.check_invariants());
        assert_eq!(p.class_of(exid(&g, "r5")), p.class_of(exid(&g, "r6")));
        assert_ne!(p.class_of(exid(&g, "r1")), p.class_of(exid(&g, "r2")));
        assert_ne!(p.class_of(exid(&g, "t1")), p.class_of(exid(&g, "t2")));
        // 15 data nodes; r5+r6 merge ⇒ 14 classes.
        assert_eq!(p.len(), 14);
    }

    #[test]
    fn class_sets_sorted_and_deduped() {
        let g = sample_graph();
        let sets = class_sets(&g);
        assert_eq!(sets.len(), 4); // r1, r2, r5, r6
        let spec_set = &sets[&exid(&g, "r5")];
        assert_eq!(spec_set, &sets[&exid(&g, "r6")]);
        assert_eq!(spec_set.len(), 1);
    }

    #[test]
    fn data_nodes_deterministic_order() {
        let g = sample_graph();
        let a = data_nodes_ordered(&g);
        let b = data_nodes_ordered(&g);
        assert_eq!(a, b);
        assert_eq!(a.len(), 15);
        // r6 (typed-only) is last: it only appears in T_G.
        assert_eq!(*a.last().unwrap(), exid(&g, "r6"));
    }

    #[test]
    fn group_by_dense_first_seen() {
        let nodes = vec![TermId(5), TermId(7), TermId(5), TermId(9)];
        let p = Partition::group_by(&nodes, |n| n.0 % 2);
        // 5 → class 0 (odd), 7 → class 0, 9 → class 0… all odd! Use mod 4.
        assert_eq!(p.len(), 1);
        let p = Partition::group_by(&nodes, |n| n.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.classes[0], vec![TermId(5), TermId(5)]);
        // Uncovered nodes report None; out-of-range ids too.
        assert_eq!(p.class_of(TermId(6)), None);
        assert_eq!(p.class_of(TermId(1000)), None);
    }
}
