//! A small bounded executor: a fixed pool of worker threads draining a
//! shared job queue.
//!
//! The event-driven server keeps exactly one thread inside the readiness
//! loop; everything that can block — a cold `SUMMARIZE` build, a large
//! `QUERY` evaluation — is handed to this pool so a slow request can
//! never stall keep-alive traffic on other connections. The pool is
//! deliberately minimal: `width` OS threads, an unbounded `mpsc` channel
//! of boxed closures behind a mutex, panic isolation per job, and a
//! drain-then-join shutdown on drop.
//!
//! "Bounded" refers to *parallelism*, not queue depth: at most `width`
//! jobs run at once, the rest wait FIFO. Queue depth is bounded by the
//! caller's admission policy (the server submits at most one job per
//! connection, so the queue never exceeds the connection count).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-width thread pool executing submitted closures FIFO.
///
/// Dropping the executor closes the queue; workers finish the jobs
/// already submitted, then exit, and the drop blocks until they have.
pub struct Executor {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    width: usize,
    in_flight: Arc<AtomicUsize>,
}

impl Executor {
    /// Spawns `width` worker threads (`width` is clamped to ≥ 1).
    pub fn new(width: usize) -> Executor {
        let width = width.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let workers = (0..width)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let in_flight = Arc::clone(&in_flight);
                thread::Builder::new()
                    .name(format!("executor-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while receiving: a worker
                        // stuck in a long job must not block the others
                        // from picking up queued work.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return, // a worker panicked holding the lock
                        };
                        match job {
                            Ok(job) => {
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                // A panicking job must not take the worker
                                // (or the pool) down with it; the server
                                // maps panics to ERR responses upstream.
                                let _ = catch_unwind(AssertUnwindSafe(job));
                                in_flight.fetch_sub(1, Ordering::SeqCst);
                            }
                            Err(_) => return, // channel closed: shutdown
                        }
                    })
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            tx: Some(tx),
            workers,
            width,
            in_flight,
        }
    }

    /// The number of worker threads.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Jobs currently executing (not queued) — a coarse load signal.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Enqueues a job; it runs on the first free worker, FIFO.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if let Some(tx) = &self.tx {
            // Send fails only if every worker has exited, which only
            // happens during shutdown — the job is dropped, matching the
            // force-close contract.
            let _ = tx.send(Box::new(job));
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Closing the channel lets each worker drain remaining jobs and
        // observe the disconnect; then wait for them.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    #[test]
    fn runs_all_submitted_jobs() {
        let ex = Executor::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let count = Arc::clone(&count);
            ex.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(ex); // joins after draining
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn width_jobs_run_concurrently() {
        let ex = Executor::new(3);
        // All three workers must be inside a job at once to pass the
        // barrier; a serial pool would deadlock (bounded by the timeout
        // thread below).
        let barrier = Arc::new(Barrier::new(3));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            ex.submit(move || {
                barrier.wait();
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "jobs did not run concurrently"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(ex);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let ex = Executor::new(1);
        ex.submit(|| panic!("job panic"));
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        ex.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        drop(ex);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn width_is_clamped_to_one() {
        let ex = Executor::new(0);
        assert_eq!(ex.width(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        ex.submit(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        drop(ex);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }
}
