//! The warm-store summarization service: resident graphs + a
//! fingerprint-keyed summary cache.
//!
//! The paper's usage model is *build once, query many times*: a summary is
//! constructed off-line and then serves an arbitrary number of requests.
//! The single-shot CLI rebuilds everything per invocation; the
//! [`SummaryService`] is the long-running counterpart behind the
//! `rdfsummary serve` TCP front-end. It owns
//!
//! * **warm stores** — loaded graphs kept resident as indexed
//!   [`TripleStore`]s, keyed by a caller-chosen name (the server uses the
//!   file path), bulk-loaded with [`TripleStore::with_threads`];
//! * a **summary cache** keyed by `(content fingerprint, kind)` — the
//!   [`rdf_store::Fingerprint`] digest is load-order independent, so two
//!   loads of the same data (different files, different triple order)
//!   share one cache line, and re-loading a file never invalidates
//!   correct entries;
//! * a **single-flight build gate**: when several clients request the
//!   same missing `(fingerprint, kind)` concurrently, exactly one thread
//!   builds while the rest wait on a condvar and then share the result.
//!   The [`SummaryService::builds`] counter is the test seam pinning that
//!   guarantee.
//!
//! Cached artifacts hold the summary's serialized N-Triples bytes,
//! produced by the *same build path and serializer the single-shot CLI
//! uses* (`summarize --kind K --out FILE`), so a cache hit answers with
//! bytes identical to what the CLI would write for the same graph — the
//! invariant the root `tests/server.rs` suite asserts on every fixture ×
//! kind pair.

use crate::summary::SummaryKind;
use rdf_model::Graph;
use rdf_store::{Fingerprint, TripleStore};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One cached summary: the serialized output plus its headline figures.
#[derive(Debug)]
pub struct SummaryArtifact {
    /// Which summary this is.
    pub kind: SummaryKind,
    /// Content fingerprint of the summarized graph.
    pub fingerprint: Fingerprint,
    /// The summary as an N-Triples document — byte-identical to the file
    /// the CLI's `summarize --kind K --out FILE` writes for this graph.
    pub ntriples: String,
    /// Node count of the summary graph (`SummaryStats::all_nodes`).
    pub summary_nodes: usize,
    /// Edge count of the summary graph (`SummaryStats::all_edges`).
    pub summary_edges: usize,
    /// Triple count of the summarized input graph.
    pub input_triples: usize,
}

/// Outcome of [`SummaryService::load_graph`].
#[derive(Clone, Copy, Debug)]
pub struct LoadedGraph {
    /// Content fingerprint of the loaded graph.
    pub fingerprint: Fingerprint,
    /// Triples in the loaded graph.
    pub triples: usize,
    /// True when the name was already bound (the old store is dropped;
    /// cached summaries survive, keyed by content, not by name).
    pub replaced: bool,
}

/// Aggregate service counters, as reported by the server's `STATS` verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Currently resident graphs.
    pub graphs: usize,
    /// Ready entries in the summary cache.
    pub cached_summaries: usize,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to build.
    pub misses: u64,
    /// Summary builds actually performed (the single-flight seam: under
    /// any concurrency this stays at one per distinct
    /// `(fingerprint, kind)` ever requested, absent evictions).
    pub builds: u64,
}

/// Errors a service request can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// `summarize` named a graph that is not loaded.
    UnknownGraph(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph(name) => write!(f, "no graph loaded as `{name}`"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A resident graph: the warm store plus its precomputed fingerprint.
struct GraphEntry {
    store: TripleStore,
    fingerprint: Fingerprint,
}

/// Cache slot state for one `(fingerprint, kind)` key.
enum Slot {
    /// Some thread is building; waiters sleep on the service condvar.
    Building,
    /// The finished artifact.
    Ready(Arc<SummaryArtifact>),
}

/// The long-running summarization service. See the module docs.
pub struct SummaryService {
    threads: usize,
    graphs: Mutex<HashMap<String, Arc<GraphEntry>>>,
    cache: Mutex<HashMap<(Fingerprint, SummaryKind), Slot>>,
    /// Signaled whenever a Building slot resolves (or is abandoned).
    slot_done: Condvar,
    builds: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Removes the `Building` marker if the build unwinds, so waiters retry
/// (one of them becomes the new builder) instead of sleeping forever.
struct BuildGuard<'a> {
    service: &'a SummaryService,
    key: (Fingerprint, SummaryKind),
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut cache = self.service.cache.lock().unwrap();
            if matches!(cache.get(&self.key), Some(Slot::Building)) {
                cache.remove(&self.key);
            }
            drop(cache);
            self.service.slot_done.notify_all();
        }
    }
}

impl SummaryService {
    /// Creates a service whose loads and summary builds may use up to
    /// `threads` workers (`1` keeps everything sequential — the exact
    /// single-shot CLI code path).
    pub fn new(threads: usize) -> Self {
        SummaryService {
            threads: threads.max(1),
            graphs: Mutex::new(HashMap::new()),
            cache: Mutex::new(HashMap::new()),
            slot_done: Condvar::new(),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Makes `g` resident under `name`, replacing any previous binding.
    /// The store is bulk-loaded with the configured workers and its
    /// content fingerprint computed once, up front.
    pub fn load_graph(&self, name: impl Into<String>, g: Graph) -> LoadedGraph {
        let store = if self.threads > 1 {
            TripleStore::with_threads(g, self.threads)
        } else {
            TripleStore::new(g)
        };
        let fingerprint = store.fingerprint();
        let triples = store.len();
        let entry = Arc::new(GraphEntry { store, fingerprint });
        let replaced = self
            .graphs
            .lock()
            .unwrap()
            .insert(name.into(), entry)
            .is_some();
        LoadedGraph {
            fingerprint,
            triples,
            replaced,
        }
    }

    /// The fingerprint and size of a resident graph, if loaded.
    pub fn graph_info(&self, name: &str) -> Option<(Fingerprint, usize)> {
        let graphs = self.graphs.lock().unwrap();
        graphs.get(name).map(|e| (e.fingerprint, e.store.len()))
    }

    /// All resident graphs as `(name, fingerprint, triples)`, sorted by
    /// name (the server's `STATS` listing).
    pub fn loaded_graphs(&self) -> Vec<(String, Fingerprint, usize)> {
        let graphs = self.graphs.lock().unwrap();
        let mut v: Vec<_> = graphs
            .iter()
            .map(|(n, e)| (n.clone(), e.fingerprint, e.store.len()))
            .collect();
        v.sort();
        v
    }

    /// The summary of the graph loaded as `name`, from the cache when
    /// possible. Returns the artifact and whether it was a cache hit.
    ///
    /// Misses build through the identical decision logic the single-shot
    /// CLI uses for `summarize --kind` (lean single-summary path below the
    /// shard threshold, sharded substrate above it), so the artifact's
    /// bytes match the CLI's output for the same graph exactly.
    pub fn summarize(
        &self,
        name: &str,
        kind: SummaryKind,
    ) -> Result<(Arc<SummaryArtifact>, bool), ServiceError> {
        let entry = self
            .graphs
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_string()))?;
        let key = (entry.fingerprint, kind);
        {
            let mut cache = self.cache.lock().unwrap();
            loop {
                match cache.get(&key) {
                    Some(Slot::Ready(artifact)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((Arc::clone(artifact), true));
                    }
                    Some(Slot::Building) => {
                        cache = self.slot_done.wait(cache).unwrap();
                    }
                    None => {
                        cache.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }
        // This thread won the build; everyone else for this key now waits.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = BuildGuard {
            service: self,
            key,
            armed: true,
        };
        let artifact = Arc::new(self.build_artifact(&entry, kind));
        {
            let mut cache = self.cache.lock().unwrap();
            cache.insert(key, Slot::Ready(Arc::clone(&artifact)));
        }
        guard.armed = false;
        self.slot_done.notify_all();
        Ok((artifact, false))
    }

    /// One real summary build + serialization (the cache-miss work).
    fn build_artifact(&self, entry: &GraphEntry, kind: SummaryKind) -> SummaryArtifact {
        self.builds.fetch_add(1, Ordering::Relaxed);
        let g = entry.store.graph();
        // Mirror `rdfsummary summarize --kind` byte for byte: the sharded
        // substrate only when the build would actually shard, the classic
        // lean path otherwise.
        let summary = if crate::parallel::shard_count(g.data().len(), self.threads) > 1 {
            crate::context::SummaryContext::sharded(g, self.threads).summarize(kind)
        } else {
            crate::builder::summarize(g, kind)
        };
        let stats = summary.stats();
        SummaryArtifact {
            kind,
            fingerprint: entry.fingerprint,
            ntriples: rdf_io::write_graph(&summary.graph),
            summary_nodes: stats.all_nodes,
            summary_edges: stats.all_edges,
            input_triples: g.len(),
        }
    }

    /// Drops the graph loaded as `name`. Ready cache entries for its
    /// fingerprint are dropped too, unless another resident graph shares
    /// the content; in-flight builds are left to finish (their artifacts
    /// stay correct — the cache is keyed by content, not by name).
    /// Returns the number of cache entries dropped, or `None` if no such
    /// graph was loaded.
    pub fn evict(&self, name: &str) -> Option<usize> {
        let entry = self.graphs.lock().unwrap().remove(name)?;
        let still_shared = self
            .graphs
            .lock()
            .unwrap()
            .values()
            .any(|e| e.fingerprint == entry.fingerprint);
        if still_shared {
            return Some(0);
        }
        let mut cache = self.cache.lock().unwrap();
        let before = cache.len();
        cache.retain(|(fp, _), slot| *fp != entry.fingerprint || matches!(slot, Slot::Building));
        Some(before - cache.len())
    }

    /// Drops every resident graph and every Ready cache entry. Returns
    /// `(graphs dropped, cache entries dropped)`.
    pub fn evict_all(&self) -> (usize, usize) {
        let graphs = {
            let mut map = self.graphs.lock().unwrap();
            let n = map.len();
            map.clear();
            n
        };
        (graphs, self.clear_cache())
    }

    /// Drops Ready cache entries only (the bench's cold-build seam),
    /// returning how many were dropped. Building slots stay, preserving
    /// single-flight for in-flight requests.
    pub fn clear_cache(&self) -> usize {
        let mut cache = self.cache.lock().unwrap();
        let before = cache.len();
        cache.retain(|_, slot| matches!(slot, Slot::Building));
        before - cache.len()
    }

    /// Number of summary builds performed so far — the single-flight test
    /// seam: with no evictions this equals the number of distinct
    /// `(fingerprint, kind)` pairs ever requested, however many threads
    /// raced on them.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let graphs = self.graphs.lock().unwrap().len();
        let cached_summaries = {
            let cache = self.cache.lock().unwrap();
            cache
                .values()
                .filter(|s| matches!(s, Slot::Ready(_)))
                .count()
        };
        ServiceStats {
            graphs,
            cached_summaries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn cache_hits_share_one_artifact() {
        let svc = SummaryService::new(1);
        let info = svc.load_graph("g", fixtures::sample_graph());
        assert!(!info.replaced);
        let (a, hit_a) = svc.summarize("g", SummaryKind::Weak).unwrap();
        let (b, hit_b) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(svc.builds(), 1);
        let st = svc.stats();
        assert_eq!((st.hits, st.misses, st.builds), (1, 1, 1));
        assert_eq!(st.graphs, 1);
        assert_eq!(st.cached_summaries, 1);
    }

    #[test]
    fn artifact_matches_direct_build() {
        let g = fixtures::sample_graph();
        let svc = SummaryService::new(1);
        svc.load_graph("g", g.clone());
        for kind in SummaryKind::ALL {
            let (artifact, _) = svc.summarize("g", kind).unwrap();
            let direct = crate::builder::summarize(&g, kind);
            assert_eq!(artifact.ntriples, rdf_io::write_graph(&direct.graph));
            assert_eq!(artifact.summary_nodes, direct.stats().all_nodes);
            assert_eq!(artifact.input_triples, g.len());
        }
        assert_eq!(svc.builds(), 4);
    }

    #[test]
    fn same_content_under_two_names_shares_the_cache() {
        let svc = SummaryService::new(1);
        let a = svc.load_graph("a", fixtures::sample_graph());
        let b = svc.load_graph("b", fixtures::sample_graph());
        assert_eq!(a.fingerprint, b.fingerprint);
        svc.summarize("a", SummaryKind::Strong).unwrap();
        let (_, hit) = svc.summarize("b", SummaryKind::Strong).unwrap();
        assert!(hit, "content-keyed cache must ignore the name");
        assert_eq!(svc.builds(), 1);
    }

    #[test]
    fn unknown_graph_is_an_error() {
        let svc = SummaryService::new(1);
        let err = svc.summarize("nope", SummaryKind::Weak).unwrap_err();
        assert_eq!(err, ServiceError::UnknownGraph("nope".into()));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn evict_drops_graph_and_its_cache_lines() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        svc.summarize("g", SummaryKind::Strong).unwrap();
        assert_eq!(svc.evict("g"), Some(2));
        assert_eq!(svc.evict("g"), None);
        assert!(svc.summarize("g", SummaryKind::Weak).is_err());
        let st = svc.stats();
        assert_eq!((st.graphs, st.cached_summaries), (0, 0));
    }

    #[test]
    fn evict_keeps_cache_shared_with_another_name() {
        let svc = SummaryService::new(1);
        svc.load_graph("a", fixtures::sample_graph());
        svc.load_graph("b", fixtures::sample_graph());
        svc.summarize("a", SummaryKind::Weak).unwrap();
        // `b` still references the same content: the cache line survives.
        assert_eq!(svc.evict("a"), Some(0));
        let (_, hit) = svc.summarize("b", SummaryKind::Weak).unwrap();
        assert!(hit);
        assert_eq!(svc.builds(), 1);
    }

    #[test]
    fn reload_keeps_content_keyed_entries() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        let info = svc.load_graph("g", fixtures::sample_graph());
        assert!(info.replaced);
        let (_, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit, "identical content reload must keep the cache warm");
        // Loading *different* content under the same name misses.
        svc.load_graph("g", fixtures::figure5_graph());
        let (_, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(!hit);
        assert_eq!(svc.builds(), 2);
    }

    #[test]
    fn clear_cache_forces_rebuilds() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        assert_eq!(svc.clear_cache(), 1);
        let (_, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(!hit);
        assert_eq!(svc.builds(), 2);
    }

    #[test]
    fn evict_all_empties_the_service() {
        let svc = SummaryService::new(1);
        svc.load_graph("a", fixtures::sample_graph());
        svc.load_graph("b", fixtures::figure5_graph());
        svc.summarize("a", SummaryKind::Weak).unwrap();
        assert_eq!(svc.evict_all(), (2, 1));
        assert_eq!(svc.stats().graphs, 0);
    }

    /// The single-flight gate under real contention: many threads × all
    /// kinds on one fingerprint build each summary exactly once.
    #[test]
    fn single_flight_under_contention() {
        let svc = Arc::new(SummaryService::new(1));
        svc.load_graph("g", fixtures::sample_graph());
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for kind in SummaryKind::ALL {
                        let (artifact, _) = svc.summarize("g", kind).unwrap();
                        assert_eq!(artifact.kind, kind);
                        assert!(!artifact.ntriples.is_empty());
                    }
                });
            }
        });
        assert_eq!(svc.builds(), 4, "one build per (fingerprint, kind)");
        let st = svc.stats();
        assert_eq!(st.hits + st.misses, (threads * 4) as u64);
    }
}
