//! The warm-store summarization service: resident graphs + a
//! fingerprint-keyed summary cache.
//!
//! The paper's usage model is *build once, query many times*: a summary is
//! constructed off-line and then serves an arbitrary number of requests.
//! The single-shot CLI rebuilds everything per invocation; the
//! [`SummaryService`] is the long-running counterpart behind the
//! `rdfsummary serve` TCP front-end. It owns
//!
//! * **warm stores** — loaded graphs kept resident as indexed
//!   [`TripleStore`]s, keyed by a caller-chosen name (the server uses the
//!   file path), bulk-loaded with [`TripleStore::with_threads`];
//! * a **summary cache** keyed by `(content fingerprint, kind)` — the
//!   [`rdf_store::Fingerprint`] digest is load-order independent, so two
//!   loads of the same data (different files, different triple order)
//!   share one cache line, and re-loading a file never invalidates
//!   correct entries;
//! * a **single-flight build gate**: when several clients request the
//!   same missing `(fingerprint, kind)` concurrently, exactly one thread
//!   builds while the rest wait on a condvar and then share the result.
//!   The [`SummaryService::builds`] counter is the test seam pinning that
//!   guarantee;
//! * an optional **byte budget** on the cache
//!   ([`SummaryService::with_cache_bytes`]): when the resident artifacts'
//!   serialized size exceeds it, least-recently-used Ready entries are
//!   evicted (never in-flight builds). The default is unbounded,
//!   preserving the historical behavior;
//! * a **prune-verdict cache** on the query path: the
//!   [`rdf_query::empty_on_summary`] verdict depends only on the graph's
//!   content fingerprint, the summary kind, and the query's *relaxed
//!   shape* ([`rdf_query::prune_shape_key`]), so it is memoized under that
//!   key. A hot provably-empty pattern answers without touching the
//!   summary at all — and, because the key is content-addressed, the
//!   memo stays sound across LRU eviction and identical-content reloads.
//!
//! Cached artifacts hold the summary's serialized N-Triples bytes,
//! produced by the *same build path and serializer the single-shot CLI
//! uses* (`summarize --kind K --out FILE`), so a cache hit answers with
//! bytes identical to what the CLI would write for the same graph — the
//! invariant the root `tests/server.rs` suite asserts on every fixture ×
//! kind pair.

use crate::cardinality::{SummaryCardinality, SummaryEstimator};
use crate::incremental::WeakDelta;
use crate::summary::SummaryKind;
use rdf_model::{Graph, PrefixMap, Term};
use rdf_query::{explain_with, parse_query, Evaluator};
use rdf_store::{Fingerprint, TripleStore};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// One cached summary: the serialized output plus its headline figures,
/// and the query-serving companions (the summary as an indexed store for
/// pruning ASKs, and the summary-derived cardinality statistics).
#[derive(Debug)]
pub struct SummaryArtifact {
    /// Which summary this is.
    pub kind: SummaryKind,
    /// Content fingerprint of the summarized graph.
    pub fingerprint: Fingerprint,
    /// The summary as an N-Triples document — byte-identical to the file
    /// the CLI's `summarize --kind K --out FILE` writes for this graph.
    pub ntriples: String,
    /// Node count of the summary graph (`SummaryStats::all_nodes`).
    pub summary_nodes: usize,
    /// Edge count of the summary graph (`SummaryStats::all_edges`).
    pub summary_edges: usize,
    /// Triple count of the summarized input graph.
    pub input_triples: usize,
    /// The summary graph, indexed — what `QUERY` pruning ASKs run on.
    pub summary_store: TripleStore,
    /// Summary-derived join-planning statistics (see [`SummaryCardinality`]).
    pub cardinality: SummaryCardinality,
}

/// Outcome of [`SummaryService::load_graph`].
#[derive(Clone, Copy, Debug)]
pub struct LoadedGraph {
    /// Content fingerprint of the loaded graph.
    pub fingerprint: Fingerprint,
    /// Triples in the loaded graph.
    pub triples: usize,
    /// True when the name was already bound (the old store is dropped;
    /// cached summaries survive, keyed by content, not by name).
    pub replaced: bool,
}

/// Aggregate service counters, as reported by the server's `STATS` verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Currently resident graphs.
    pub graphs: usize,
    /// Ready entries in the summary cache.
    pub cached_summaries: usize,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to build.
    pub misses: u64,
    /// Summary builds actually performed (the single-flight seam: under
    /// any concurrency this stays at one per distinct
    /// `(fingerprint, kind)` ever requested, absent evictions).
    pub builds: u64,
    /// `QUERY` requests served.
    pub queries: u64,
    /// `QUERY` requests answered empty by summary pruning alone.
    pub pruned: u64,
    /// `QUERY` requests whose pruning verdict came from the prune-verdict
    /// cache (the summary ASK — and on empty verdicts the summary lookup
    /// itself — was skipped).
    pub prune_hits: u64,
    /// Summary-cache entries evicted by the byte budget (LRU only; named
    /// `EVICT`s and cache clears are not counted here).
    pub evictions: u64,
    /// Serialized bytes currently resident in the summary cache.
    pub cache_bytes: usize,
    /// `UPDATE` batches processed (inserts and deletes, no-ops included).
    pub updates: u64,
    /// Cached summaries carried across a fingerprint transition by the
    /// incremental patch path (no rebuild).
    pub patches: u64,
    /// Cached summaries carried across a fingerprint transition by an
    /// eager rebuild (kinds without a sound patch rule, or after a
    /// delete). Each one also counts in `builds` — so under any workload
    /// `builds == patch_fallbacks + misses`, the CI liveness seam.
    pub patch_fallbacks: u64,
    /// Cache misses answered from a persisted on-disk artifact instead of
    /// a build (each also counts in `hits`, never in `misses`).
    pub persist_hits: u64,
    /// Artifacts successfully written to the persist dir.
    pub persist_writes: u64,
}

/// Errors a service request can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// `summarize`/`query` named a graph that is not loaded.
    UnknownGraph(String),
    /// `query` text failed to parse or compile.
    BadQuery(String),
    /// `update` carried a malformed triple (the whole batch is rejected
    /// without mutating the graph).
    BadUpdate(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph(name) => write!(f, "no graph loaded as `{name}`"),
            ServiceError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            ServiceError::BadUpdate(msg) => write!(f, "bad update: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Outcome of [`SummaryService::query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Head variable names, in projection order (empty for ASK queries).
    pub columns: Vec<String>,
    /// Distinct answer rows, each term rendered in N-Triples syntax.
    /// ASK queries report no rows — see [`QueryOutcome::ask`].
    pub rows: Vec<Vec<String>>,
    /// Did the query have at least one embedding?
    pub ask: bool,
    /// True when the summary proved emptiness and graph evaluation was
    /// skipped entirely (empty-on-summary ⇒ empty-on-graph).
    pub pruned: bool,
    /// True when the summary consulted for pruning came from the cache.
    pub cache_hit: bool,
    /// The summary kind consulted for pruning and join planning.
    pub kind: SummaryKind,
    /// True when the row limit cut off the enumeration.
    pub truncated: bool,
}

/// Outcome of [`SummaryService::update`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Content fingerprint before the batch.
    pub previous: Fingerprint,
    /// Content fingerprint after the batch (equals `previous` when the
    /// batch was a no-op — every triple already present/absent).
    pub fingerprint: Fingerprint,
    /// Triples genuinely inserted/removed.
    pub applied: usize,
    /// Cached summaries carried to the new fingerprint by the patch path.
    pub patched: usize,
    /// Cached summaries carried by an eager rebuild (fallback).
    pub rebuilt: usize,
}

/// A resident graph: the warm store plus its precomputed fingerprint and,
/// once the graph has seen an insert batch, the incremental weak-summary
/// scan state that lets `UPDATE` patch cached weak summaries instead of
/// rebuilding. Deletes drop the state (quotient summaries are not
/// decremental — see [`crate::incremental`]).
struct GraphEntry {
    store: TripleStore,
    fingerprint: Fingerprint,
    delta: Option<WeakDelta>,
}

/// Cache slot state for one `(fingerprint, kind)` key.
enum Slot {
    /// Some thread is building; waiters sleep on the service condvar.
    Building,
    /// The finished artifact plus its budget accounting.
    Ready {
        artifact: Arc<SummaryArtifact>,
        /// Budget cost of this entry: the serialized N-Triples size — the
        /// dominant, directly comparable share of an artifact's footprint
        /// (the indexed store and statistics scale with it).
        bytes: usize,
        /// Lamport stamp of the last hit; the LRU victim is the minimum.
        last_used: u64,
    },
}

/// The summary cache behind one mutex: the slots plus the LRU clock and
/// the running byte total the eviction policy needs.
#[derive(Default)]
struct CacheState {
    slots: HashMap<(Fingerprint, SummaryKind), Slot>,
    /// Monotone hit counter backing the `last_used` stamps.
    clock: u64,
    /// Sum of the `bytes` of all Ready slots.
    total_bytes: usize,
}

impl CacheState {
    /// Recomputes `total_bytes` after a bulk `retain` on the slots.
    fn resync_total(&mut self) {
        self.total_bytes = self
            .slots
            .values()
            .map(|s| match s {
                Slot::Ready { bytes, .. } => *bytes,
                Slot::Building => 0,
            })
            .sum();
    }
}

/// Key of one memoized pruning verdict: content fingerprint + summary
/// kind + the query's relaxed shape. Content-addressed, so entries never
/// go stale — they are dropped only to bound memory.
type PruneKey = (Fingerprint, SummaryKind, String);

/// Entry cap on the prune-verdict memo; when full, the map is cleared
/// (verdicts cost one summary ASK to recompute, so a rare full reset is
/// cheaper than per-entry LRU bookkeeping on the hot path).
const PRUNE_CACHE_CAP: usize = 65_536;

/// The long-running summarization service. See the module docs.
///
/// Lock order (outer to inner): the `graphs` map mutex, then one entry's
/// `RwLock`, then the `cache`/`prune_verdicts` mutexes. No path acquires
/// the map mutex while holding an entry lock, and no path locks two
/// entries at once — the discipline that keeps `UPDATE`'s write path
/// deadlock-free against concurrent readers and `STATS` listings.
pub struct SummaryService {
    threads: usize,
    graphs: Mutex<HashMap<String, Arc<RwLock<GraphEntry>>>>,
    cache: Mutex<CacheState>,
    /// Byte budget for Ready cache entries; `None` = unbounded.
    cache_budget: Option<usize>,
    /// Warm-restart persistence: artifacts are written here and probed on
    /// cache misses (see [`crate::persist`]). `None` = memory-only.
    persist_dir: Option<PathBuf>,
    /// Uniquifies temp-file names for the write-then-rename protocol.
    persist_seq: AtomicU64,
    /// Signaled whenever a Building slot resolves (or is abandoned).
    slot_done: Condvar,
    prune_verdicts: Mutex<HashMap<PruneKey, bool>>,
    builds: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    queries: AtomicU64,
    pruned: AtomicU64,
    prune_hits: AtomicU64,
    evictions: AtomicU64,
    updates: AtomicU64,
    patches: AtomicU64,
    patch_fallbacks: AtomicU64,
    persist_hits: AtomicU64,
    persist_writes: AtomicU64,
}

/// Removes the `Building` marker if the build unwinds, so waiters retry
/// (one of them becomes the new builder) instead of sleeping forever.
struct BuildGuard<'a> {
    service: &'a SummaryService,
    key: (Fingerprint, SummaryKind),
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut cache = self.service.cache.lock().unwrap();
            if matches!(cache.slots.get(&self.key), Some(Slot::Building)) {
                cache.slots.remove(&self.key);
            }
            drop(cache);
            self.service.slot_done.notify_all();
        }
    }
}

impl SummaryService {
    /// Creates a service whose loads and summary builds may use up to
    /// `threads` workers (`1` keeps everything sequential — the exact
    /// single-shot CLI code path). The summary cache is unbounded; see
    /// [`Self::with_cache_bytes`] for a budgeted one.
    pub fn new(threads: usize) -> Self {
        Self::with_cache_bytes(threads, None)
    }

    /// [`Self::new`] with an optional byte budget on the summary cache:
    /// whenever the serialized size of the Ready artifacts exceeds
    /// `cache_bytes`, least-recently-used entries are evicted until it
    /// fits (an artifact larger than the whole budget is still built and
    /// returned, just not retained). `None` means unbounded.
    pub fn with_cache_bytes(threads: usize, cache_bytes: Option<usize>) -> Self {
        SummaryService {
            threads: threads.max(1),
            graphs: Mutex::new(HashMap::new()),
            cache: Mutex::new(CacheState::default()),
            cache_budget: cache_bytes,
            persist_dir: None,
            persist_seq: AtomicU64::new(0),
            slot_done: Condvar::new(),
            prune_verdicts: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            prune_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            patch_fallbacks: AtomicU64::new(0),
            persist_hits: AtomicU64::new(0),
            persist_writes: AtomicU64::new(0),
        }
    }

    /// Enables warm-restart persistence: every artifact the service
    /// builds (or patches) is written to `dir` as
    /// `<fingerprint>-<kind>.sum` via temp-file + atomic rename, and a
    /// cache miss probes the directory before building. A probe that
    /// fails *in any way* — missing file, bad checksum, wrong version,
    /// truncation, content mismatch — silently degrades to a normal miss;
    /// `EVICT` and `UPDATE` invalidation unlink the on-disk slots along
    /// with the in-memory lines. The directory is created if absent.
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let _ = std::fs::create_dir_all(&dir);
        self.persist_dir = Some(dir);
        self
    }

    /// The persist dir, when warm-restart persistence is enabled.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist_dir.as_deref()
    }

    /// The configured cache byte budget (`None` = unbounded).
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache_budget
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Makes `g` resident under `name`, replacing any previous binding.
    /// The store is bulk-loaded with the configured workers and its
    /// content fingerprint computed once, up front.
    pub fn load_graph(&self, name: impl Into<String>, g: Graph) -> LoadedGraph {
        let store = if self.threads > 1 {
            TripleStore::with_threads(g, self.threads)
        } else {
            TripleStore::new(g)
        };
        let fingerprint = store.fingerprint();
        let triples = store.len();
        let entry = Arc::new(RwLock::new(GraphEntry {
            store,
            fingerprint,
            delta: None,
        }));
        let replaced = self
            .graphs
            .lock()
            .unwrap()
            .insert(name.into(), entry)
            .is_some();
        LoadedGraph {
            fingerprint,
            triples,
            replaced,
        }
    }

    /// The fingerprint and size of a resident graph, if loaded.
    pub fn graph_info(&self, name: &str) -> Option<(Fingerprint, usize)> {
        let graphs = self.graphs.lock().unwrap();
        graphs.get(name).map(|e| {
            let e = e.read().unwrap();
            (e.fingerprint, e.store.len())
        })
    }

    /// All resident graphs as `(name, fingerprint, triples)`, sorted by
    /// name (the server's `STATS` listing).
    pub fn loaded_graphs(&self) -> Vec<(String, Fingerprint, usize)> {
        let graphs = self.graphs.lock().unwrap();
        let mut v: Vec<_> = graphs
            .iter()
            .map(|(n, e)| {
                let e = e.read().unwrap();
                (n.clone(), e.fingerprint, e.store.len())
            })
            .collect();
        v.sort();
        v
    }

    /// The summary of the graph loaded as `name`, from the cache when
    /// possible. Returns the artifact and whether it was a cache hit.
    ///
    /// Misses build through the identical decision logic the single-shot
    /// CLI uses for `summarize --kind` (lean single-summary path below the
    /// shard threshold, sharded substrate above it), so the artifact's
    /// bytes match the CLI's output for the same graph exactly.
    pub fn summarize(
        &self,
        name: &str,
        kind: SummaryKind,
    ) -> Result<(Arc<SummaryArtifact>, bool), ServiceError> {
        let entry = self
            .graphs
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_string()))?;
        let entry = entry.read().unwrap();
        Ok(self.summarize_entry(&entry, kind))
    }

    /// [`Self::summarize`] against an already-resolved graph entry — the
    /// query path uses this so the summary it prunes with is guaranteed
    /// to describe the *same* content snapshot it evaluates against, even
    /// if a concurrent `LOAD` rebinds the name in between.
    fn summarize_entry(
        &self,
        entry: &GraphEntry,
        kind: SummaryKind,
    ) -> (Arc<SummaryArtifact>, bool) {
        let key = (entry.fingerprint, kind);
        {
            let mut cache = self.cache.lock().unwrap();
            loop {
                cache.clock += 1;
                let stamp = cache.clock;
                match cache.slots.get_mut(&key) {
                    Some(Slot::Ready {
                        artifact,
                        last_used,
                        ..
                    }) => {
                        *last_used = stamp;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (Arc::clone(artifact), true);
                    }
                    Some(Slot::Building) => {
                        cache = self.slot_done.wait(cache).unwrap();
                    }
                    None => {
                        cache.slots.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }
        // This thread won the build; everyone else for this key now waits.
        let mut guard = BuildGuard {
            service: self,
            key,
            armed: true,
        };
        // Warm-restart seam: a persisted artifact for this exact slot is
        // served as a cache hit — no build, `builds()` untouched. A probe
        // failure of any sort is just a miss.
        if let Some(artifact) = self.probe_persisted(entry, kind) {
            let artifact = Arc::new(artifact);
            self.install_built(key, &artifact);
            guard.armed = false;
            self.slot_done.notify_all();
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.persist_hits.fetch_add(1, Ordering::Relaxed);
            return (artifact, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(self.build_artifact(entry, kind));
        self.persist_artifact(&artifact, entry.store.graph());
        self.install_built(key, &artifact);
        guard.armed = false;
        self.slot_done.notify_all();
        (artifact, false)
    }

    /// Replaces this key's `Building` marker with the finished artifact
    /// (the build-winner's installation step).
    fn install_built(&self, key: (Fingerprint, SummaryKind), artifact: &Arc<SummaryArtifact>) {
        let mut cache = self.cache.lock().unwrap();
        let bytes = artifact.ntriples.len();
        cache.clock += 1;
        let stamp = cache.clock;
        cache.slots.insert(
            key,
            Slot::Ready {
                artifact: Arc::clone(artifact),
                bytes,
                last_used: stamp,
            },
        );
        cache.total_bytes += bytes;
        self.enforce_budget(&mut cache);
    }

    /// Probes the persist dir for this slot's artifact. `None` — missing
    /// file, damage of any kind, a slot mismatch — means "plain miss".
    fn probe_persisted(&self, entry: &GraphEntry, kind: SummaryKind) -> Option<SummaryArtifact> {
        let dir = self.persist_dir.as_ref()?;
        let path = dir.join(crate::persist::artifact_file_name(entry.fingerprint, kind));
        let raw = std::fs::read(path).ok()?;
        crate::persist::decode_artifact(&raw, entry.store.graph(), entry.fingerprint, kind)
    }

    /// Writes `artifact` to the persist dir via write-to-temp + atomic
    /// rename, so a concurrent probe (or a crash mid-write) never sees a
    /// half-written file. Failures are silent: persistence is an
    /// optimization, never a request error.
    fn persist_artifact(&self, artifact: &SummaryArtifact, g: &Graph) {
        let Some(dir) = self.persist_dir.as_ref() else {
            return;
        };
        let Some(bytes) = crate::persist::encode_artifact(artifact, g) else {
            return;
        };
        let name = crate::persist::artifact_file_name(artifact.fingerprint, artifact.kind);
        let seq = self.persist_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".{name}.{}.{seq}.tmp", std::process::id()));
        if std::fs::write(&tmp, &bytes).is_ok() && std::fs::rename(&tmp, dir.join(name)).is_ok() {
            self.persist_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Evicts least-recently-used Ready entries until the cache fits the
    /// byte budget. In-flight `Building` slots are never touched (their
    /// single-flight waiters must still find them); the freshly inserted
    /// entry has the newest stamp, so it goes last — meaning an artifact
    /// larger than the entire budget is evicted right back out, i.e.
    /// returned to the caller but not retained.
    fn enforce_budget(&self, cache: &mut CacheState) {
        let Some(budget) = self.cache_budget else {
            return;
        };
        while cache.total_bytes > budget {
            let victim = cache
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, *k)),
                    Slot::Building => None,
                })
                .min_by_key(|&(last_used, _)| last_used);
            let Some((_, key)) = victim else {
                return; // only Building slots left: nothing evictable
            };
            if let Some(Slot::Ready { bytes, .. }) = cache.slots.remove(&key) {
                cache.total_bytes -= bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// One real summary build + serialization (the cache-miss work).
    fn build_artifact(&self, entry: &GraphEntry, kind: SummaryKind) -> SummaryArtifact {
        self.builds.fetch_add(1, Ordering::Relaxed);
        let g = entry.store.graph();
        // Mirror `rdfsummary summarize --kind` byte for byte: the sharded
        // substrate only when the build would actually shard, the classic
        // lean path otherwise.
        let summary = if crate::parallel::shard_count(g.data().len(), self.threads) > 1 {
            crate::context::SummaryContext::sharded(g, self.threads).summarize(kind)
        } else {
            crate::builder::summarize(g, kind)
        };
        let stats = summary.stats();
        let cardinality = SummaryCardinality::new(&entry.store, &summary);
        let ntriples = rdf_io::write_graph(&summary.graph);
        SummaryArtifact {
            kind,
            fingerprint: entry.fingerprint,
            ntriples,
            summary_nodes: stats.all_nodes,
            summary_edges: stats.all_edges,
            input_triples: g.len(),
            summary_store: TripleStore::new(summary.graph),
            cardinality,
        }
    }

    /// Applies an `UPDATE` batch to the graph loaded as `name` —
    /// `insert == true` adds triples, `false` removes them — and carries
    /// the cached summaries across the fingerprint transition.
    ///
    /// The store absorbs the batch in O(delta + merge) (incremental
    /// fingerprint, merged indices — no rebuild; see
    /// [`TripleStore::insert_batch`]). Every summary kind cached for the
    /// *old* fingerprint is re-established under the new one:
    ///
    /// * **patch** — weak summaries after insert-only history are
    ///   materialized from the maintained [`WeakDelta`] scan state,
    ///   byte-identical to a fresh build but skipping the full input
    ///   re-scan (and not counted in `builds`);
    /// * **rebuild fallback** — every other kind (their quotients are not
    ///   soundly patchable: type/property insertions can split their
    ///   equivalence classes, which union–find cannot undo), and every
    ///   kind after a delete. Counted in both `builds` and
    ///   `patch_fallbacks`, keeping `builds == patch_fallbacks + misses`.
    ///
    /// Old-fingerprint cache lines and memoized prune verdicts are then
    /// dropped unless another resident graph still has that content.
    /// Insert batches are atomic: one malformed triple rejects the whole
    /// batch with [`ServiceError::BadUpdate`] and no state changes.
    pub fn update(
        &self,
        name: &str,
        insert: bool,
        triples: &[(Term, Term, Term)],
    ) -> Result<UpdateOutcome, ServiceError> {
        let entry_arc = self
            .graphs
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_string()))?;
        let mut entry = entry_arc.write().unwrap();
        let previous = entry.fingerprint;
        let batch = if insert {
            entry
                .store
                .insert_batch(triples)
                .map_err(|e| ServiceError::BadUpdate(e.to_string()))?
        } else {
            entry.store.delete_batch(triples)
        };
        self.updates.fetch_add(1, Ordering::Relaxed);
        if batch.applied.is_empty() {
            // No-op batch: content, fingerprint, and cache are untouched.
            return Ok(UpdateOutcome {
                previous,
                fingerprint: previous,
                applied: 0,
                patched: 0,
                rebuilt: 0,
            });
        }
        let fingerprint = batch.fingerprint;
        let e = &mut *entry;
        e.fingerprint = fingerprint;
        if insert {
            match e.delta.as_mut() {
                Some(d) => d.apply_inserts(e.store.graph(), &batch.applied),
                None => e.delta = Some(WeakDelta::from_graph(e.store.graph())),
            }
        } else {
            // Quotient summaries are not decremental: drop the scan state;
            // it re-primes (one full scan) on the next insert batch.
            e.delta = None;
        }
        // Carry every Ready line of the old fingerprint to the new one.
        let cached_kinds: Vec<SummaryKind> = {
            let cache = self.cache.lock().unwrap();
            cache
                .slots
                .iter()
                .filter_map(|((fp, kind), slot)| {
                    (*fp == previous && matches!(slot, Slot::Ready { .. })).then_some(*kind)
                })
                .collect()
        };
        // The patch path must reproduce what a fresh build would emit;
        // above the shard threshold the builder switches to the sharded
        // substrate, so patching is gated to the lean-build regime.
        let can_patch = e.delta.is_some()
            && crate::parallel::shard_count(e.store.graph().data().len(), self.threads) <= 1;
        let (mut patched, mut rebuilt) = (0usize, 0usize);
        for kind in cached_kinds {
            let artifact = if kind == SummaryKind::Weak && can_patch {
                patched += 1;
                self.patches.fetch_add(1, Ordering::Relaxed);
                Arc::new(self.patch_artifact(e))
            } else {
                rebuilt += 1;
                self.patch_fallbacks.fetch_add(1, Ordering::Relaxed);
                Arc::new(self.build_artifact(e, kind))
            };
            // Re-key the on-disk slot along with the in-memory line (the
            // old fingerprint's files go with `drop_fingerprint_lines`).
            self.persist_artifact(&artifact, e.store.graph());
            self.insert_ready((fingerprint, kind), artifact);
        }
        // Release the entry before the sharing scan: fingerprint_shared
        // read-locks every entry, including this one.
        drop(entry);
        if !self.fingerprint_shared(previous) {
            self.drop_fingerprint_lines(previous);
        }
        Ok(UpdateOutcome {
            previous,
            fingerprint,
            applied: batch.applied.len(),
            patched,
            rebuilt,
        })
    }

    /// Packages the delta-materialized weak summary into an artifact — the
    /// same fields [`Self::build_artifact`] fills, minus the summary
    /// construction itself (and minus the `builds` increment: nothing was
    /// rebuilt). Byte-identical to the fresh build by [`WeakDelta`]'s
    /// contract.
    fn patch_artifact(&self, entry: &GraphEntry) -> SummaryArtifact {
        let g = entry.store.graph();
        let summary = entry
            .delta
            .as_ref()
            .expect("patching requires the delta state")
            .summary(g);
        let stats = summary.stats();
        let cardinality = SummaryCardinality::new(&entry.store, &summary);
        let ntriples = rdf_io::write_graph(&summary.graph);
        SummaryArtifact {
            kind: SummaryKind::Weak,
            fingerprint: entry.fingerprint,
            ntriples,
            summary_nodes: stats.all_nodes,
            summary_edges: stats.all_edges,
            input_triples: g.len(),
            summary_store: TripleStore::new(summary.graph),
            cardinality,
        }
    }

    /// Installs a finished artifact as a Ready cache line, unless the key
    /// is already occupied: an in-flight Building slot will land identical
    /// content (content-addressed key), and racing it on the slot would
    /// corrupt the byte accounting.
    fn insert_ready(&self, key: (Fingerprint, SummaryKind), artifact: Arc<SummaryArtifact>) {
        let mut cache = self.cache.lock().unwrap();
        if cache.slots.contains_key(&key) {
            return;
        }
        let bytes = artifact.ntriples.len();
        cache.clock += 1;
        let stamp = cache.clock;
        cache.slots.insert(
            key,
            Slot::Ready {
                artifact,
                bytes,
                last_used: stamp,
            },
        );
        cache.total_bytes += bytes;
        self.enforce_budget(&mut cache);
    }

    /// Evaluates a BGP query (paper notation, e.g. `q(?x) :- ?x <p> ?y`)
    /// against the warm store loaded as `name`, with **summary-based
    /// pruning**: the query is first checked against a summary of the
    /// graph ([`rdf_query::empty_on_summary`] — sound for every quotient
    /// kind), and when the summary proves emptiness the graph join is
    /// skipped entirely. Otherwise the join runs in the order of a static
    /// plan whose cardinality estimates come from the same summary
    /// ([`SummaryEstimator`]).
    ///
    /// `kind` picks the summary to consult; `None` prefers whatever is
    /// already cached for the graph's fingerprint (so pruning never costs
    /// a rebuild when *any* kind is warm), falling back to
    /// [`SummaryKind::Weak`] — the smallest summary — on a cold cache.
    /// `limit` caps the number of distinct rows enumerated.
    ///
    /// The pruning verdict is memoized per `(fingerprint, kind, relaxed
    /// shape)`: a repeated provably-empty pattern short-circuits before
    /// the summary lookup, and a repeated don't-know pattern skips the
    /// summary ASK and goes straight to the graph join.
    pub fn query(
        &self,
        name: &str,
        text: &str,
        kind: Option<SummaryKind>,
        limit: usize,
    ) -> Result<QueryOutcome, ServiceError> {
        let entry = self
            .graphs
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownGraph(name.to_string()))?;
        // Hold the read lock for the whole evaluation: the summary pruned
        // with and the store joined against stay one content snapshot,
        // even under concurrent UPDATEs.
        let entry = entry.read().unwrap();
        let spec = parse_query(text, &PrefixMap::with_defaults())
            .map_err(|e| ServiceError::BadQuery(e.to_string()))?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        let kind = kind.unwrap_or_else(|| self.preferred_kind(entry.fingerprint));
        let store = &entry.store;
        let q = rdf_query::compile(&spec, store.graph())
            .map_err(|e| ServiceError::BadQuery(e.to_string()))?;
        let columns: Vec<String> = spec.head.clone();
        // Consult the prune-verdict memo before the summary cache: a
        // known-empty shape answers without materializing any artifact.
        let prune_key: PruneKey = (entry.fingerprint, kind, rdf_query::prune_shape_key(&spec));
        let memoized = self.prune_verdicts.lock().unwrap().get(&prune_key).copied();
        if memoized == Some(true) {
            self.prune_hits.fetch_add(1, Ordering::Relaxed);
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return Ok(QueryOutcome {
                columns,
                rows: Vec::new(),
                ask: false,
                pruned: true,
                cache_hit: true,
                kind,
                truncated: false,
            });
        }
        let (artifact, cache_hit) = self.summarize_entry(&entry, kind);
        let empty = match memoized {
            Some(verdict) => {
                self.prune_hits.fetch_add(1, Ordering::Relaxed);
                verdict
            }
            None => {
                let verdict = rdf_query::empty_on_summary(&artifact.summary_store, &spec);
                // An empty body never prunes and its shape key is the
                // degenerate empty string — not worth a memo slot.
                if !spec.body.is_empty() {
                    let mut memo = self.prune_verdicts.lock().unwrap();
                    if memo.len() >= PRUNE_CACHE_CAP && !memo.contains_key(&prune_key) {
                        memo.clear();
                    }
                    memo.insert(prune_key, verdict);
                }
                verdict
            }
        };
        if empty {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return Ok(QueryOutcome {
                columns,
                rows: Vec::new(),
                ask: false,
                pruned: true,
                cache_hit,
                kind: artifact.kind,
                truncated: false,
            });
        }
        let estimator = SummaryEstimator::new(store, &artifact.cardinality);
        let plan = explain_with(&q, &estimator);
        let ev = Evaluator::new(store);
        let (rows, ask, truncated) = if spec.is_boolean() {
            let ask = ev.ask_ordered(&q, &plan.order());
            (Vec::new(), ask, false)
        } else {
            // Probe one row past the limit: an answer set of *exactly*
            // `limit` rows is complete, not truncated — only an overflow
            // row proves the cut. (`usize::MAX` saturates; never cut.)
            let mut rs = ev.select_limit_ordered(&q, &plan.order(), limit.saturating_add(1));
            let truncated = rs.rows.len() > limit;
            if truncated {
                rs.rows.truncate(limit);
            }
            let rows: Vec<Vec<String>> = rs
                .decode(store)
                .into_iter()
                .map(|row| row.into_iter().map(|t| t.to_string()).collect())
                .collect();
            let ask = !rows.is_empty();
            (rows, ask, truncated)
        };
        Ok(QueryOutcome {
            columns,
            rows,
            ask,
            pruned: false,
            cache_hit,
            kind: artifact.kind,
            truncated,
        })
    }

    /// The summary kind to consult when the caller expressed no
    /// preference: an already-cached Ready kind for this fingerprint (in
    /// a fixed preference order, so the choice is deterministic), else
    /// [`SummaryKind::Weak`].
    fn preferred_kind(&self, fingerprint: Fingerprint) -> SummaryKind {
        const PREFERENCE: [SummaryKind; 6] = [
            SummaryKind::Weak,
            SummaryKind::TypedWeak,
            SummaryKind::Strong,
            SummaryKind::TypedStrong,
            SummaryKind::TypeBased,
            SummaryKind::Bisimulation,
        ];
        let cache = self.cache.lock().unwrap();
        PREFERENCE
            .into_iter()
            .find(|&k| matches!(cache.slots.get(&(fingerprint, k)), Some(Slot::Ready { .. })))
            .unwrap_or(SummaryKind::Weak)
    }

    /// Drops the graph loaded as `name`. Ready cache entries for its
    /// fingerprint are dropped too, unless another resident graph shares
    /// the content; in-flight builds are left to finish (their artifacts
    /// stay correct — the cache is keyed by content, not by name).
    /// Returns the number of cache entries dropped, or `None` if no such
    /// graph was loaded.
    pub fn evict(&self, name: &str) -> Option<usize> {
        let entry = self.graphs.lock().unwrap().remove(name)?;
        let fingerprint = entry.read().unwrap().fingerprint;
        if self.fingerprint_shared(fingerprint) {
            return Some(0);
        }
        Some(self.drop_fingerprint_lines(fingerprint))
    }

    /// Is `fingerprint` the content of any currently resident graph?
    fn fingerprint_shared(&self, fingerprint: Fingerprint) -> bool {
        self.graphs
            .lock()
            .unwrap()
            .values()
            .any(|e| e.read().unwrap().fingerprint == fingerprint)
    }

    /// Drops every Ready cache line and memoized prune verdict keyed by
    /// `fingerprint` (in-flight builds are left to finish — their waiters
    /// must still find the Building marker). Returns the number of cache
    /// entries dropped. Memoized verdicts would stay *correct*
    /// (content-addressed), but an unreferenced fingerprint's lines are
    /// dead weight.
    fn drop_fingerprint_lines(&self, fingerprint: Fingerprint) -> usize {
        if let Some(dir) = self.persist_dir.as_ref() {
            for kind in crate::persist::ALL_KINDS {
                let _ = std::fs::remove_file(
                    dir.join(crate::persist::artifact_file_name(fingerprint, kind)),
                );
            }
        }
        self.prune_verdicts
            .lock()
            .unwrap()
            .retain(|(fp, _, _), _| *fp != fingerprint);
        let mut cache = self.cache.lock().unwrap();
        let before = cache.slots.len();
        cache
            .slots
            .retain(|(fp, _), slot| *fp != fingerprint || matches!(slot, Slot::Building));
        let dropped = before - cache.slots.len();
        cache.resync_total();
        dropped
    }

    /// Drops every resident graph and every Ready cache entry. Returns
    /// `(graphs dropped, cache entries dropped)`.
    pub fn evict_all(&self) -> (usize, usize) {
        let graphs = {
            let mut map = self.graphs.lock().unwrap();
            let n = map.len();
            map.clear();
            n
        };
        // No graph survives, so no persisted slot can ever be probed
        // again under its fingerprint — sweep them all.
        if let Some(dir) = self.persist_dir.as_ref() {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for ent in entries.flatten() {
                    let path = ent.path();
                    if path.extension().is_some_and(|e| e == "sum") {
                        let _ = std::fs::remove_file(path);
                    }
                }
            }
        }
        (graphs, self.clear_cache())
    }

    /// Drops Ready cache entries only (the bench's cold-build seam),
    /// returning how many were dropped. Building slots stay, preserving
    /// single-flight for in-flight requests. The prune-verdict memo is
    /// cleared too, so "cold" means cold for the query path as well.
    pub fn clear_cache(&self) -> usize {
        self.prune_verdicts.lock().unwrap().clear();
        let mut cache = self.cache.lock().unwrap();
        let before = cache.slots.len();
        cache.slots.retain(|_, slot| matches!(slot, Slot::Building));
        let dropped = before - cache.slots.len();
        cache.resync_total();
        dropped
    }

    /// Number of summary builds performed so far — the single-flight test
    /// seam: with no evictions this equals the number of distinct
    /// `(fingerprint, kind)` pairs ever requested, however many threads
    /// raced on them.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let graphs = self.graphs.lock().unwrap().len();
        let (cached_summaries, cache_bytes) = {
            let cache = self.cache.lock().unwrap();
            let ready = cache
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            (ready, cache.total_bytes)
        };
        ServiceStats {
            graphs,
            cached_summaries,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            prune_hits: self.prune_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            cache_bytes,
            updates: self.updates.load(Ordering::Relaxed),
            patches: self.patches.load(Ordering::Relaxed),
            patch_fallbacks: self.patch_fallbacks.load(Ordering::Relaxed),
            persist_hits: self.persist_hits.load(Ordering::Relaxed),
            persist_writes: self.persist_writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn cache_hits_share_one_artifact() {
        let svc = SummaryService::new(1);
        let info = svc.load_graph("g", fixtures::sample_graph());
        assert!(!info.replaced);
        let (a, hit_a) = svc.summarize("g", SummaryKind::Weak).unwrap();
        let (b, hit_b) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(svc.builds(), 1);
        let st = svc.stats();
        assert_eq!((st.hits, st.misses, st.builds), (1, 1, 1));
        assert_eq!(st.graphs, 1);
        assert_eq!(st.cached_summaries, 1);
    }

    #[test]
    fn artifact_matches_direct_build() {
        let g = fixtures::sample_graph();
        let svc = SummaryService::new(1);
        svc.load_graph("g", g.clone());
        for kind in SummaryKind::ALL {
            let (artifact, _) = svc.summarize("g", kind).unwrap();
            let direct = crate::builder::summarize(&g, kind);
            assert_eq!(artifact.ntriples, rdf_io::write_graph(&direct.graph));
            assert_eq!(artifact.summary_nodes, direct.stats().all_nodes);
            assert_eq!(artifact.input_triples, g.len());
        }
        assert_eq!(svc.builds(), 4);
    }

    #[test]
    fn same_content_under_two_names_shares_the_cache() {
        let svc = SummaryService::new(1);
        let a = svc.load_graph("a", fixtures::sample_graph());
        let b = svc.load_graph("b", fixtures::sample_graph());
        assert_eq!(a.fingerprint, b.fingerprint);
        svc.summarize("a", SummaryKind::Strong).unwrap();
        let (_, hit) = svc.summarize("b", SummaryKind::Strong).unwrap();
        assert!(hit, "content-keyed cache must ignore the name");
        assert_eq!(svc.builds(), 1);
    }

    #[test]
    fn unknown_graph_is_an_error() {
        let svc = SummaryService::new(1);
        let err = svc.summarize("nope", SummaryKind::Weak).unwrap_err();
        assert_eq!(err, ServiceError::UnknownGraph("nope".into()));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn evict_drops_graph_and_its_cache_lines() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        svc.summarize("g", SummaryKind::Strong).unwrap();
        assert_eq!(svc.evict("g"), Some(2));
        assert_eq!(svc.evict("g"), None);
        assert!(svc.summarize("g", SummaryKind::Weak).is_err());
        let st = svc.stats();
        assert_eq!((st.graphs, st.cached_summaries), (0, 0));
    }

    #[test]
    fn evict_keeps_cache_shared_with_another_name() {
        let svc = SummaryService::new(1);
        svc.load_graph("a", fixtures::sample_graph());
        svc.load_graph("b", fixtures::sample_graph());
        svc.summarize("a", SummaryKind::Weak).unwrap();
        // `b` still references the same content: the cache line survives.
        assert_eq!(svc.evict("a"), Some(0));
        let (_, hit) = svc.summarize("b", SummaryKind::Weak).unwrap();
        assert!(hit);
        assert_eq!(svc.builds(), 1);
    }

    #[test]
    fn reload_keeps_content_keyed_entries() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        let info = svc.load_graph("g", fixtures::sample_graph());
        assert!(info.replaced);
        let (_, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit, "identical content reload must keep the cache warm");
        // Loading *different* content under the same name misses.
        svc.load_graph("g", fixtures::figure5_graph());
        let (_, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(!hit);
        assert_eq!(svc.builds(), 2);
    }

    #[test]
    fn clear_cache_forces_rebuilds() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        assert_eq!(svc.clear_cache(), 1);
        let (_, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(!hit);
        assert_eq!(svc.builds(), 2);
    }

    #[test]
    fn evict_all_empties_the_service() {
        let svc = SummaryService::new(1);
        svc.load_graph("a", fixtures::sample_graph());
        svc.load_graph("b", fixtures::figure5_graph());
        svc.summarize("a", SummaryKind::Weak).unwrap();
        assert_eq!(svc.evict_all(), (2, 1));
        assert_eq!(svc.stats().graphs, 0);
    }

    #[test]
    fn query_selects_and_counts() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        let out = svc
            .query("g", "q(?x, ?y) :- ?x ?p ?y", None, usize::MAX)
            .unwrap();
        assert_eq!(out.columns, vec!["x", "y"]);
        assert!(out.ask);
        assert!(!out.pruned);
        assert!(!out.rows.is_empty());
        assert!(!out.truncated);
        let st = svc.stats();
        assert_eq!((st.queries, st.pruned), (1, 0));
        // The pruning summary was built once and is now cached.
        assert_eq!(st.builds, 1);
        let out2 = svc
            .query("g", "q(?x, ?y) :- ?x ?p ?y", None, usize::MAX)
            .unwrap();
        assert!(out2.cache_hit);
        assert_eq!(out2.rows, out.rows);
    }

    #[test]
    fn query_prunes_empty_answers_via_the_summary() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        // No such property anywhere: the summary proves emptiness.
        let out = svc
            .query(
                "g",
                "q(?x) :- ?x <urn:no-such-property> ?y",
                None,
                usize::MAX,
            )
            .unwrap();
        assert!(out.pruned);
        assert!(!out.ask);
        assert!(out.rows.is_empty());
        assert_eq!(svc.stats().pruned, 1);
    }

    #[test]
    fn query_agrees_with_unpruned_evaluator() {
        use rdf_model::PrefixMap;
        let g = fixtures::sample_graph();
        let svc = SummaryService::new(1);
        svc.load_graph("g", g.clone());
        let store = rdf_store::TripleStore::new(g);
        for text in [
            "q(?x, ?y) :- ?x ?p ?y",
            "q(?x) :- ?x a ?c",
            "q(?x) :- ?x ?p ?y, ?y ?q ?z",
        ] {
            let spec = rdf_query::parse_query(text, &PrefixMap::with_defaults()).unwrap();
            let q = rdf_query::compile(&spec, store.graph()).unwrap();
            let expect: std::collections::BTreeSet<Vec<String>> = rdf_query::Evaluator::new(&store)
                .select(&q)
                .decode(&store)
                .into_iter()
                .map(|row| row.into_iter().map(|t| t.to_string()).collect())
                .collect();
            for kind in SummaryKind::ALL {
                let out = svc.query("g", text, Some(kind), usize::MAX).unwrap();
                let got: std::collections::BTreeSet<Vec<String>> =
                    out.rows.iter().cloned().collect();
                assert_eq!(got, expect, "query `{text}` under {kind}");
            }
        }
    }

    #[test]
    fn query_limit_truncates() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        let out = svc.query("g", "q(?x, ?y) :- ?x ?p ?y", None, 2).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert!(out.truncated);
    }

    #[test]
    fn query_boolean_form() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        let out = svc.query("g", "q() :- ?x ?p ?y", None, usize::MAX).unwrap();
        assert!(out.ask);
        assert!(out.columns.is_empty());
        assert!(out.rows.is_empty());
    }

    #[test]
    fn query_errors_are_typed() {
        let svc = SummaryService::new(1);
        assert!(matches!(
            svc.query("nope", "q() :- ?x ?p ?y", None, usize::MAX),
            Err(ServiceError::UnknownGraph(_))
        ));
        svc.load_graph("g", fixtures::sample_graph());
        let err = svc.query("g", "not a query", None, usize::MAX).unwrap_err();
        assert!(matches!(err, ServiceError::BadQuery(_)));
        assert!(err.to_string().contains("bad query"));
        // Empty body is rejected at parse/compile, not panicking later.
        assert!(matches!(
            svc.query("g", "q() :- ", None, usize::MAX),
            Err(ServiceError::BadQuery(_))
        ));
    }

    #[test]
    fn query_prefers_an_already_cached_kind() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::TypedStrong).unwrap();
        let out = svc.query("g", "q() :- ?x ?p ?y", None, usize::MAX).unwrap();
        assert_eq!(out.kind, SummaryKind::TypedStrong);
        assert!(out.cache_hit, "pruning must not force a rebuild");
        assert_eq!(svc.builds(), 1);
    }

    #[test]
    fn cache_budget_evicts_lru_first() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        let (w, _) = svc.summarize("g", SummaryKind::Weak).unwrap();
        let one = w.ntriples.len();
        // Room for roughly two artifacts of this size.
        let svc = SummaryService::with_cache_bytes(1, Some(one * 2 + one / 2));
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        svc.summarize("g", SummaryKind::Strong).unwrap();
        // Touch Weak so Strong becomes the LRU victim.
        let (_, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit);
        svc.summarize("g", SummaryKind::TypedWeak).unwrap();
        let st = svc.stats();
        assert!(st.evictions >= 1, "budget must have evicted");
        assert!(
            st.cache_bytes <= one * 2 + one / 2,
            "cache over budget: {} > {}",
            st.cache_bytes,
            one * 2 + one / 2
        );
        // Weak survived (recently used), Strong was evicted.
        let (_, weak_hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(weak_hit, "recently-used entry must survive eviction");
        let (_, strong_hit) = svc.summarize("g", SummaryKind::Strong).unwrap();
        assert!(!strong_hit, "LRU entry must have been evicted");
    }

    #[test]
    fn oversized_artifact_is_returned_but_not_retained() {
        let svc = SummaryService::with_cache_bytes(1, Some(1));
        svc.load_graph("g", fixtures::sample_graph());
        let (artifact, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(!hit);
        assert!(!artifact.ntriples.is_empty());
        let st = svc.stats();
        assert_eq!(st.cached_summaries, 0, "over-budget entry must not stay");
        assert_eq!(st.cache_bytes, 0);
        assert_eq!(st.evictions, 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        for kind in SummaryKind::ALL {
            svc.summarize("g", kind).unwrap();
        }
        let st = svc.stats();
        assert_eq!(st.evictions, 0);
        assert_eq!(st.cached_summaries, 4);
        assert!(st.cache_bytes > 0);
        assert_eq!(svc.cache_budget(), None);
    }

    #[test]
    fn prune_verdicts_are_memoized() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        let q = "q(?x) :- ?x <urn:no-such-property> ?y";
        let first = svc.query("g", q, None, usize::MAX).unwrap();
        assert!(first.pruned);
        assert_eq!(svc.stats().prune_hits, 0, "first sighting is a miss");
        // Same shape, different constant: still one memo line.
        let second = svc
            .query(
                "g",
                "q(?x) :- ?x <urn:no-such-property> ?z",
                None,
                usize::MAX,
            )
            .unwrap();
        assert!(second.pruned);
        assert!(second.cache_hit);
        let st = svc.stats();
        assert_eq!(st.prune_hits, 1);
        assert_eq!((st.queries, st.pruned), (2, 2));
        // Non-empty shapes memoize the don't-know verdict too: the second
        // run skips the ASK but still evaluates (same rows).
        let a = svc
            .query("g", "q(?x, ?y) :- ?x ?p ?y", None, usize::MAX)
            .unwrap();
        let b = svc
            .query("g", "q(?x, ?y) :- ?x ?p ?y", None, usize::MAX)
            .unwrap();
        assert!(!b.pruned);
        assert_eq!(a.rows, b.rows);
        assert_eq!(svc.stats().prune_hits, 2);
    }

    #[test]
    fn prune_memo_survives_lru_eviction_soundly() {
        // Budget too small to retain any artifact: every query rebuilds
        // the summary — except known-empty shapes, which skip it entirely.
        let svc = SummaryService::with_cache_bytes(1, Some(1));
        svc.load_graph("g", fixtures::sample_graph());
        let q = "q(?x) :- ?x <urn:no-such-property> ?y";
        assert!(svc.query("g", q, None, usize::MAX).unwrap().pruned);
        let builds_before = svc.builds();
        let out = svc.query("g", q, None, usize::MAX).unwrap();
        assert!(out.pruned);
        assert_eq!(
            svc.builds(),
            builds_before,
            "memoized empty verdict must not rebuild the evicted summary"
        );
    }

    #[test]
    fn evict_and_clear_invalidate_the_prune_memo() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        let q = "q(?x) :- ?x <urn:no-such-property> ?y";
        svc.query("g", q, None, usize::MAX).unwrap();
        // EVICT drops the graph and its memo lines; a reload of the same
        // content re-primes from scratch (miss, then hit).
        svc.evict("g").unwrap();
        svc.load_graph("g", fixtures::sample_graph());
        svc.query("g", q, None, usize::MAX).unwrap();
        assert_eq!(svc.stats().prune_hits, 0, "memo was dropped on evict");
        svc.query("g", q, None, usize::MAX).unwrap();
        assert_eq!(svc.stats().prune_hits, 1);
        // clear_cache resets the memo as well.
        svc.clear_cache();
        svc.query("g", q, None, usize::MAX).unwrap();
        assert_eq!(svc.stats().prune_hits, 1, "memo was dropped on clear");
        // Loading *different* content under the name keys separately: the
        // old fingerprint's verdicts cannot leak onto the new graph.
        svc.load_graph("g", fixtures::figure5_graph());
        svc.query("g", q, None, usize::MAX).unwrap();
        assert_eq!(
            svc.stats().prune_hits,
            1,
            "new content must not hit the old memo"
        );
    }

    fn u(s: &str, p: &str, o: &str) -> (Term, Term, Term) {
        (Term::iri(s), Term::iri(p), Term::iri(o))
    }

    /// One UPDATE batch: the insert/delete flag plus its triples.
    type UpdateOp = (bool, Vec<(Term, Term, Term)>);

    /// Mirrors the service's store mutations on a local store, so tests
    /// can compare served bytes against a cold rebuild of the same
    /// mutated graph (the service does not expose its graphs).
    fn mutated_store(base: Graph, ops: &[UpdateOp]) -> rdf_store::TripleStore {
        let mut st = rdf_store::TripleStore::new(base);
        for (insert, batch) in ops {
            if *insert {
                st.insert_batch(batch).unwrap();
            } else {
                st.delete_batch(batch);
            }
        }
        st
    }

    #[test]
    fn update_patches_cached_weak_summary() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        assert_eq!(svc.builds(), 1);
        let batch = vec![u("urn:u:s", "urn:u:p", "urn:u:o")];
        let out = svc.update("g", true, &batch).unwrap();
        assert_eq!(out.applied, 1);
        assert_ne!(out.previous, out.fingerprint);
        assert_eq!((out.patched, out.rebuilt), (1, 0));
        // The patched line serves without any rebuild…
        let (artifact, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit, "patched summary must be a cache hit");
        assert_eq!(svc.builds(), 1, "no rebuild on the weak patch path");
        assert_eq!(artifact.fingerprint, out.fingerprint);
        // …and is byte-identical to a cold rebuild of the mutated graph.
        let st = mutated_store(fixtures::sample_graph(), &[(true, batch)]);
        let direct = crate::builder::summarize(st.graph(), SummaryKind::Weak);
        assert_eq!(artifact.ntriples, rdf_io::write_graph(&direct.graph));
        let stats = svc.stats();
        assert_eq!(
            (stats.updates, stats.patches, stats.patch_fallbacks),
            (1, 1, 0)
        );
        assert_eq!(stats.builds, stats.patch_fallbacks + stats.misses);
    }

    /// The satellite suite: fixtures × kinds, every cached summary carried
    /// across insert and delete transitions byte-identical to a rebuild.
    #[test]
    fn update_transition_is_byte_identical_across_fixtures_and_kinds() {
        type Fixture = (&'static str, fn() -> Graph);
        let fixtures: [Fixture; 3] = [
            ("sample", fixtures::sample_graph as fn() -> Graph),
            ("figure5", fixtures::figure5_graph as fn() -> Graph),
            ("book", fixtures::book_graph as fn() -> Graph),
        ];
        let ops: [UpdateOp; 3] = [
            (true, vec![u("urn:u:a", "urn:u:p", "urn:u:b")]),
            (
                true,
                vec![
                    u("urn:u:a", "urn:u:q", "urn:u:c"),
                    (
                        Term::iri("urn:u:a"),
                        Term::iri(rdf_model::vocab::RDF_TYPE),
                        Term::iri("urn:u:T"),
                    ),
                ],
            ),
            (false, vec![u("urn:u:a", "urn:u:p", "urn:u:b")]),
        ];
        for (name, fixture) in fixtures {
            let svc = SummaryService::new(1);
            svc.load_graph("g", fixture());
            for kind in SummaryKind::ALL {
                svc.summarize("g", kind).unwrap();
            }
            let mut applied_ops: Vec<UpdateOp> = Vec::new();
            for (insert, batch) in &ops {
                let out = svc.update("g", *insert, batch).unwrap();
                applied_ops.push((*insert, batch.clone()));
                assert_eq!(
                    out.patched + out.rebuilt,
                    SummaryKind::ALL.len(),
                    "{name}: every cached kind must survive the transition"
                );
                let st = mutated_store(fixture(), &applied_ops);
                for kind in SummaryKind::ALL {
                    let (artifact, hit) = svc.summarize("g", kind).unwrap();
                    assert!(hit, "{name}/{kind}: transition must keep the cache warm");
                    let direct = crate::builder::summarize(st.graph(), kind);
                    assert_eq!(
                        artifact.ntriples,
                        rdf_io::write_graph(&direct.graph),
                        "{name}/{kind}: served summary must match a cold rebuild"
                    );
                }
            }
            let stats = svc.stats();
            assert_eq!(stats.builds, stats.patch_fallbacks + stats.misses);
        }
    }

    #[test]
    fn update_delete_falls_back_then_insert_patches_again() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        // Prime some content, then delete it: the weak patch state is
        // dropped, so the transition rebuilds.
        let batch = vec![u("urn:u:s", "urn:u:p", "urn:u:o")];
        svc.update("g", true, &batch).unwrap();
        let out = svc.update("g", false, &batch).unwrap();
        assert_eq!((out.patched, out.rebuilt), (0, 1));
        // A subsequent insert re-primes the state and patches again.
        let out = svc.update("g", true, &batch).unwrap();
        assert_eq!((out.patched, out.rebuilt), (1, 0));
        let stats = svc.stats();
        assert_eq!(stats.builds, stats.patch_fallbacks + stats.misses);
    }

    #[test]
    fn update_noop_batch_changes_nothing() {
        let svc = SummaryService::new(1);
        let info = svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        // Inserting an existing triple / deleting an absent one: no-ops.
        let existing = svc.query("g", "q(?x, ?y) :- ?x <urn:nope> ?y", None, 1);
        assert!(existing.is_ok());
        let out = svc
            .update("g", false, &[u("urn:no", "urn:such", "urn:triple")])
            .unwrap();
        assert_eq!(out.applied, 0);
        assert_eq!(out.fingerprint, info.fingerprint);
        let (_, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit, "no-op update must not disturb the cache");
        assert_eq!(svc.stats().updates, 1);
    }

    #[test]
    fn update_rejects_malformed_batch_atomically() {
        let svc = SummaryService::new(1);
        let info = svc.load_graph("g", fixtures::sample_graph());
        let bad = vec![
            u("urn:ok", "urn:p", "urn:o"),
            (Term::literal("L"), Term::iri("urn:p"), Term::iri("urn:o")),
        ];
        let err = svc.update("g", true, &bad).unwrap_err();
        assert!(matches!(err, ServiceError::BadUpdate(_)));
        assert!(err.to_string().contains("bad update"));
        assert_eq!(svc.graph_info("g").unwrap().0, info.fingerprint);
        assert!(matches!(
            svc.update("nope", true, &[]),
            Err(ServiceError::UnknownGraph(_))
        ));
    }

    #[test]
    fn update_invalidates_old_fingerprint_lines_and_prune_memo() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        let q = "q(?x) :- ?x <urn:no-such-property> ?y";
        assert!(svc.query("g", q, None, usize::MAX).unwrap().pruned);
        let out = svc
            .update("g", true, &[u("urn:u:s", "urn:u:p", "urn:u:o")])
            .unwrap();
        // One cache line resides (the patched one, under the new key).
        let stats = svc.stats();
        assert_eq!(stats.cached_summaries, 1);
        let (artifact, _) = svc.summarize("g", SummaryKind::Weak).unwrap();
        assert_eq!(artifact.fingerprint, out.fingerprint);
        // The prune memo was keyed by the old fingerprint: re-priming is a
        // memo miss (sound — the verdict could have flipped).
        let before = svc.stats().prune_hits;
        assert!(svc.query("g", q, None, usize::MAX).unwrap().pruned);
        assert_eq!(svc.stats().prune_hits, before, "old-fp memo must be gone");
    }

    #[test]
    fn update_keeps_shared_content_lines() {
        let svc = SummaryService::new(1);
        svc.load_graph("a", fixtures::sample_graph());
        svc.load_graph("b", fixtures::sample_graph());
        svc.summarize("a", SummaryKind::Weak).unwrap();
        svc.update("a", true, &[u("urn:u:s", "urn:u:p", "urn:u:o")])
            .unwrap();
        // `b` still holds the old content: its cache line must survive.
        let (_, hit) = svc.summarize("b", SummaryKind::Weak).unwrap();
        assert!(hit, "shared old-fingerprint line must survive the update");
    }

    /// Interleaved UPDATE/QUERY chaos from several threads: the service
    /// stays live and the counter seams hold (the CI stress invariant).
    #[test]
    fn update_query_interleaving_stays_consistent() {
        let svc = Arc::new(SummaryService::new(1));
        svc.load_graph("g", fixtures::sample_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for i in 0..8 {
                        let t = u(
                            &format!("urn:w{worker}:s{i}"),
                            "urn:u:p",
                            &format!("urn:w{worker}:o{i}"),
                        );
                        svc.update("g", i % 4 != 3, &[t]).unwrap();
                        let out = svc
                            .query("g", "q(?x, ?y) :- ?x <urn:u:p> ?y", None, usize::MAX)
                            .unwrap();
                        assert!(!out.columns.is_empty());
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.updates, 32);
        assert_eq!(
            stats.builds,
            stats.patch_fallbacks + stats.misses,
            "every build is either a request miss or a declared fallback"
        );
    }

    /// The single-flight gate under real contention: many threads × all
    /// kinds on one fingerprint build each summary exactly once.
    #[test]
    fn single_flight_under_contention() {
        let svc = Arc::new(SummaryService::new(1));
        svc.load_graph("g", fixtures::sample_graph());
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for kind in SummaryKind::ALL {
                        let (artifact, _) = svc.summarize("g", kind).unwrap();
                        assert_eq!(artifact.kind, kind);
                        assert!(!artifact.ntriples.is_empty());
                    }
                });
            }
        });
        assert_eq!(svc.builds(), 4, "one build per (fingerprint, kind)");
        let st = svc.stats();
        assert_eq!(st.hits + st.misses, (threads * 4) as u64);
    }

    #[test]
    fn query_exactly_limit_rows_is_not_truncated() {
        let svc = SummaryService::new(1);
        svc.load_graph("g", fixtures::sample_graph());
        let text = "q(?x, ?y) :- ?x ?p ?y";
        let n = svc.query("g", text, None, usize::MAX).unwrap().rows.len();
        assert!(n > 1, "fixture must yield several rows");
        // Exactly-full result set: complete, not truncated.
        let exact = svc.query("g", text, None, n).unwrap();
        assert_eq!(exact.rows.len(), n);
        assert!(!exact.truncated, "exact-fit misreported as truncated");
        // One below: genuinely cut.
        let cut = svc.query("g", text, None, n - 1).unwrap();
        assert_eq!(cut.rows.len(), n - 1);
        assert!(cut.truncated);
    }

    /// A scratch persist dir, wiped of any previous run's leftovers.
    fn persist_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rdfsum_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persisted_artifact_warms_a_fresh_service() {
        let dir = persist_dir("warm");
        let cold = SummaryService::new(1).with_persist_dir(&dir);
        cold.load_graph("g", fixtures::sample_graph());
        let (built, hit) = cold.summarize("g", SummaryKind::Weak).unwrap();
        assert!(!hit);
        let st = cold.stats();
        assert_eq!((st.persist_writes, st.persist_hits), (1, 0));
        drop(cold);

        // A "restarted" service: same dir, fresh cache.
        let warm = SummaryService::new(1).with_persist_dir(&dir);
        warm.load_graph("g", fixtures::sample_graph());
        let (artifact, hit) = warm.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit, "persisted artifact must serve as a hit");
        assert_eq!(warm.builds(), 0, "warm path must not rebuild");
        assert_eq!(artifact.ntriples, built.ntriples, "bytes must be identical");
        let st = warm.stats();
        assert_eq!((st.hits, st.misses, st.persist_hits), (1, 0, 1));
        assert_eq!(st.builds, st.patch_fallbacks + st.misses);
        // Second request is an ordinary in-memory hit, not another probe.
        let (_, hit) = warm.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit);
        assert_eq!(warm.stats().persist_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_persisted_artifacts_degrade_to_plain_misses() {
        let dir = persist_dir("corrupt");
        let cold = SummaryService::new(1).with_persist_dir(&dir);
        let fp = cold.load_graph("g", fixtures::sample_graph()).fingerprint;
        let (built, _) = cold.summarize("g", SummaryKind::Weak).unwrap();
        drop(cold);
        let path = dir.join(crate::persist::artifact_file_name(fp, SummaryKind::Weak));
        let good = std::fs::read(&path).unwrap();

        let damaged: Vec<(&str, Vec<u8>)> = vec![
            ("empty", Vec::new()),
            ("truncated", good[..good.len() / 2].to_vec()),
            ("bit flip", {
                let mut v = good.clone();
                let mid = v.len() / 2;
                v[mid] ^= 0x20;
                v
            }),
            ("wrong magic", {
                let mut v = good.clone();
                v[0] = b'X';
                v
            }),
            ("wrong version", {
                let mut v = good.clone();
                v[8] = 0x7f;
                v
            }),
            ("garbage", b"not an artifact at all".to_vec()),
        ];
        for (what, bytes) in damaged {
            std::fs::write(&path, bytes).unwrap();
            let svc = SummaryService::new(1).with_persist_dir(&dir);
            svc.load_graph("g", fixtures::sample_graph());
            let (artifact, hit) = svc.summarize("g", SummaryKind::Weak).unwrap();
            assert!(!hit, "{what}: corrupt artifact served as a hit");
            assert_eq!(svc.builds(), 1, "{what}: must fall back to a build");
            let st = svc.stats();
            assert_eq!((st.misses, st.persist_hits), (1, 0), "{what}");
            assert_eq!(artifact.ntriples, built.ntriples, "{what}: wrong bytes");
            // The rebuild re-persists a good artifact over the damage…
            assert_eq!(st.persist_writes, 1, "{what}: no write-back");
        }
        // …so one more restart comes back warm again.
        let healed = SummaryService::new(1).with_persist_dir(&dir);
        healed.load_graph("g", fixtures::sample_graph());
        let (_, hit) = healed.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit);
        assert_eq!(healed.builds(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_unlinks_persisted_slots() {
        let dir = persist_dir("evict");
        let svc = SummaryService::new(1).with_persist_dir(&dir);
        let fp = svc.load_graph("g", fixtures::sample_graph()).fingerprint;
        svc.summarize("g", SummaryKind::Weak).unwrap();
        svc.summarize("g", SummaryKind::Strong).unwrap();
        let weak = dir.join(crate::persist::artifact_file_name(fp, SummaryKind::Weak));
        assert!(weak.exists());
        svc.evict("g").unwrap();
        assert!(!weak.exists(), "EVICT must unlink the on-disk slots");
        assert!(!dir
            .join(crate::persist::artifact_file_name(fp, SummaryKind::Strong))
            .exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_keeps_persisted_slots_shared_with_another_name() {
        let dir = persist_dir("evict_shared");
        let svc = SummaryService::new(1).with_persist_dir(&dir);
        let fp = svc.load_graph("a", fixtures::sample_graph()).fingerprint;
        svc.load_graph("b", fixtures::sample_graph());
        svc.summarize("a", SummaryKind::Weak).unwrap();
        let path = dir.join(crate::persist::artifact_file_name(fp, SummaryKind::Weak));
        svc.evict("a").unwrap();
        assert!(path.exists(), "content still resident under another name");
        svc.evict("b").unwrap();
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_rekeys_persisted_slots() {
        let dir = persist_dir("update");
        let svc = SummaryService::new(1).with_persist_dir(&dir);
        let old_fp = svc.load_graph("g", fixtures::sample_graph()).fingerprint;
        svc.summarize("g", SummaryKind::Weak).unwrap();
        let (s, p, o) = u("http://x/new", "http://x/p", "http://x/target");
        let out = svc.update("g", true, &[(s, p, o)]).unwrap();
        assert_ne!(out.fingerprint, old_fp);
        let old = dir.join(crate::persist::artifact_file_name(
            old_fp,
            SummaryKind::Weak,
        ));
        let new = dir.join(crate::persist::artifact_file_name(
            out.fingerprint,
            SummaryKind::Weak,
        ));
        assert!(!old.exists(), "stale slot must be unlinked");
        assert!(new.exists(), "carried artifact must be re-keyed on disk");
        // A restarted service on the updated content comes back warm.
        let mutated = mutated_store(
            fixtures::sample_graph(),
            &[(
                true,
                vec![u("http://x/new", "http://x/p", "http://x/target")],
            )],
        );
        let warm = SummaryService::new(1).with_persist_dir(&dir);
        warm.load_graph("g", mutated.graph().clone());
        let (_, hit) = warm.summarize("g", SummaryKind::Weak).unwrap();
        assert!(hit);
        assert_eq!(warm.builds(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_all_sweeps_the_persist_dir() {
        let dir = persist_dir("evict_all");
        let svc = SummaryService::new(1).with_persist_dir(&dir);
        svc.load_graph("g", fixtures::sample_graph());
        svc.load_graph("h", fixtures::book_graph());
        svc.summarize("g", SummaryKind::Weak).unwrap();
        svc.summarize("h", SummaryKind::TypedWeak).unwrap();
        let n_sum = |dir: &std::path::Path| {
            std::fs::read_dir(dir)
                .unwrap()
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "sum"))
                .count()
        };
        assert_eq!(n_sum(&dir), 2);
        svc.evict_all();
        assert_eq!(n_sum(&dir), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
