//! Incremental weak summarization: maintaining `W_G` under triple
//! insertions without rebuilding.
//!
//! The paper's streaming algorithms (§6.2) are one-pass and
//! insertion-order-insensitive, which makes them natural *online*
//! maintenance procedures — the direction the authors later developed into
//! incremental quotient summaries. [`IncrementalWeak`] keeps the streaming
//! state (union–find over summary nodes, the per-property `dpSrc`/`dpTarg`
//! slots, `rd`, and class sets) alive between insertions; a consistent
//! [`crate::Summary`] can be materialized at any point, and is always
//! identical (up to minted-URI naming, which is property-set-derived and
//! thus equal) to the batch weak summary of the triples inserted so far.
//!
//! Deletions are *not* supported: quotient summaries are not decremental
//! (removing a triple can split cliques, which union–find cannot undo);
//! rebuild for that — still cheap, as summarization is linear.

use crate::naming::n_term;
use crate::summary::{Summary, SummaryKind};
use crate::unionfind::UnionFind;
use rdf_model::{Component, FxHashMap, Graph, Term, TermId, Triple};
use std::sync::Arc;

/// An online weak summarizer.
#[derive(Debug)]
pub struct IncrementalWeak {
    /// The accumulated input graph (owned; also the dictionary).
    graph: Graph,
    /// Union–find over summary node ids.
    uf: UnionFind,
    /// `rd`: G node → summary node id.
    rd: FxHashMap<TermId, usize>,
    /// `dpSrc` / `dpTarg`: per-property source/target summary node.
    dp_src: FxHashMap<TermId, usize>,
    dp_targ: FxHashMap<TermId, usize>,
    /// `dtp`: property → current (source, target) summary ids.
    dtp: FxHashMap<TermId, (usize, usize)>,
    /// Classes per summary node id (`dcls`).
    dcls: FxHashMap<usize, Vec<TermId>>,
    /// Number of insertions processed (for instrumentation).
    inserted: usize,
}

impl Default for IncrementalWeak {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalWeak {
    /// An empty summarizer.
    pub fn new() -> Self {
        IncrementalWeak {
            graph: Graph::new(),
            uf: UnionFind::new(0),
            rd: FxHashMap::default(),
            dp_src: FxHashMap::default(),
            dp_targ: FxHashMap::default(),
            dtp: FxHashMap::default(),
            dcls: FxHashMap::default(),
            inserted: 0,
        }
    }

    /// Starts from an existing graph (bulk phase), then stays incremental.
    pub fn from_graph(g: &Graph) -> Self {
        let mut inc = Self::new();
        for t in g.iter() {
            let s = g.dict().decode(t.s).clone();
            let p = g.dict().decode(t.p).clone();
            let o = g.dict().decode(t.o).clone();
            inc.insert(s, p, o).expect("re-inserting a valid graph");
        }
        inc
    }

    /// The accumulated input graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of triples inserted so far (including duplicates).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    fn get(&mut self, r: TermId, p: TermId, source_side: bool) -> usize {
        let dp = if source_side {
            &mut self.dp_src
        } else {
            &mut self.dp_targ
        };
        let slot = dp.get(&p).map(|&d| self.uf.find(d));
        let node = self.rd.get(&r).copied().map(|d| self.uf.find(d));
        match (slot, node) {
            (None, None) => {
                let d = self.uf.push();
                self.rd.insert(r, d);
                dp.insert(p, d);
                d
            }
            (Some(du), None) => {
                self.rd.insert(r, du);
                du
            }
            (None, Some(ds)) => {
                dp.insert(p, ds);
                ds
            }
            (Some(du), Some(ds)) => {
                if du == ds {
                    ds
                } else {
                    let survivor = self.uf.union(du, ds);
                    // Merge class sets of the fused nodes.
                    let loser = if survivor == du { ds } else { du };
                    if let Some(mut classes) = self.dcls.remove(&loser) {
                        let into = self.dcls.entry(survivor).or_default();
                        classes.retain(|c| !into.contains(c));
                        into.append(&mut classes);
                    }
                    survivor
                }
            }
        }
    }

    /// Inserts one triple (any component), updating the summary state.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> Result<(), rdf_model::ModelError> {
        self.inserted += 1;
        let before = self.graph.len();
        let (t, comp) = self.graph.insert(s, p, o)?;
        if self.graph.len() == before {
            return Ok(()); // duplicate
        }
        match comp {
            Component::Schema => { /* copied verbatim at materialization */ }
            Component::Data => {
                let _ = self.get(t.s, t.p, true);
                let _ = self.get(t.o, t.p, false);
                let src = self.get(t.s, t.p, true);
                let targ = self.get(t.o, t.p, false);
                let src = self.uf.find(src);
                let targ = self.uf.find(targ);
                self.dtp.insert(t.p, (src, targ));
            }
            Component::Type => {
                // A typed-only subject gets its *own* union–find node; the
                // Nτ coalescing happens only at materialization. Eagerly
                // sharing one node would be wrong: a later data triple can
                // split one typed-only resource away from the others, and
                // union–find cannot un-merge.
                let d = match self.rd.get(&t.s).copied() {
                    Some(d) => self.uf.find(d),
                    None => {
                        let d = self.uf.push();
                        self.rd.insert(t.s, d);
                        d
                    }
                };
                let v = self.dcls.entry(d).or_default();
                if !v.contains(&t.o) {
                    v.push(t.o);
                }
            }
        }
        Ok(())
    }

    /// Materializes the current weak summary.
    ///
    /// Equal (same URIs and triples) to `weak_summary(self.graph())`.
    pub fn summary(&mut self) -> Summary {
        // Per-root in/out property sets from the dp slots.
        let mut in_props: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
        let mut out_props: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
        let dp_targ: Vec<(TermId, usize)> = self.dp_targ.iter().map(|(&p, &d)| (p, d)).collect();
        for (p, d) in dp_targ {
            in_props.entry(self.uf.find(d)).or_default().push(p);
        }
        let dp_src: Vec<(TermId, usize)> = self.dp_src.iter().map(|(&p, &d)| (p, d)).collect();
        for (p, d) in dp_src {
            out_props.entry(self.uf.find(d)).or_default().push(p);
        }

        let mut h = Graph::new();
        let mut h_node: FxHashMap<usize, TermId> = FxHashMap::default();
        let mut roots: Vec<usize> = self.rd.values().map(|&d| self.uf.find_const(d)).collect();
        roots.sort_unstable();
        roots.dedup();
        for root in roots {
            // Prop-less roots are exactly the typed-only resources; they
            // all coalesce onto Nτ here: `n_term(∅, ∅)` normalizes to the
            // structurally-equal Nτ key, so every such root encodes to
            // one summary node. Names mint symbolically (shared `Arc`
            // set keys, lazily rendered) and each root mints once, so
            // pointer-identity coincides with name identity — rendered
            // output is byte-identical to the old eager strings.
            let tc = in_props.get(&root).cloned().unwrap_or_default();
            let sc = out_props.get(&root).cloned().unwrap_or_default();
            let name = n_term(self.graph.dict(), &tc, &sc);
            h_node.insert(root, h.dict_mut().encode(name));
        }

        // Constants transfer dictionary-to-dictionary as shared `Arc`s.
        let dict = self.graph.dict();
        let transfer =
            |h: &mut Graph, id: TermId| h.dict_mut().encode_shared(Arc::clone(dict.shared(id)));
        for t in self.graph.schema() {
            let s = transfer(&mut h, t.s);
            let p = transfer(&mut h, t.p);
            let o = transfer(&mut h, t.o);
            h.insert_encoded(Triple::new(s, p, o));
        }
        for (&p, &(s, o)) in &self.dtp {
            let s = h_node[&self.uf.find_const(s)];
            let o = h_node[&self.uf.find_const(o)];
            let p = transfer(&mut h, p);
            h.insert_encoded(Triple::new(s, p, o));
        }
        let tau = h.rdf_type();
        for (&d, classes) in &self.dcls {
            let s = h_node[&self.uf.find_const(d)];
            for &c in classes {
                let c = transfer(&mut h, c);
                h.insert_encoded(Triple::new(s, tau, c));
            }
        }

        let node_map: FxHashMap<TermId, TermId> = self
            .rd
            .iter()
            .map(|(&r, &d)| (r, h_node[&self.uf.find_const(d)]))
            .collect();
        Summary::new(SummaryKind::Weak, h, node_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_graph;
    use crate::iso::summary_isomorphic;
    use crate::weak::weak_summary;
    use rdf_io::write_graph;

    fn canonical(g: &Graph) -> Vec<String> {
        let mut v: Vec<String> = write_graph(g).lines().map(String::from).collect();
        v.sort();
        v
    }

    #[test]
    fn matches_batch_after_bulk_load() {
        let g = sample_graph();
        let mut inc = IncrementalWeak::from_graph(&g);
        let batch = weak_summary(&g);
        assert_eq!(canonical(&inc.summary().graph), canonical(&batch.graph));
    }

    #[test]
    fn matches_batch_at_every_prefix() {
        let g = sample_graph();
        let triples: Vec<(Term, Term, Term)> = g
            .iter()
            .map(|t| {
                (
                    g.dict().decode(t.s).clone(),
                    g.dict().decode(t.p).clone(),
                    g.dict().decode(t.o).clone(),
                )
            })
            .collect();
        let mut inc = IncrementalWeak::new();
        let mut prefix = Graph::new();
        for (s, p, o) in triples {
            inc.insert(s.clone(), p.clone(), o.clone()).unwrap();
            prefix.insert(s, p, o).unwrap();
            let batch = weak_summary(&prefix);
            assert!(
                summary_isomorphic(&inc.summary().graph, &batch.graph),
                "diverged at {} triples",
                prefix.len()
            );
        }
    }

    #[test]
    fn duplicates_are_noops() {
        let mut inc = IncrementalWeak::new();
        for _ in 0..3 {
            inc.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"))
                .unwrap();
        }
        assert_eq!(inc.graph().len(), 1);
        assert_eq!(inc.inserted(), 3);
        assert_eq!(inc.summary().graph.data().len(), 1);
    }

    #[test]
    fn typed_only_then_data_promotion() {
        // A node first seen typed-only (on Nτ) later gains a data property:
        // the summary must re-home it, matching the batch result.
        let mut inc = IncrementalWeak::new();
        inc.insert(
            Term::iri("x"),
            Term::iri(rdf_model::vocab::RDF_TYPE),
            Term::iri("C"),
        )
        .unwrap();
        let s1 = inc.summary();
        assert_eq!(s1.graph.types().len(), 1);
        inc.insert(Term::iri("x"), Term::iri("p"), Term::iri("y"))
            .unwrap();
        let batch = weak_summary(inc.graph());
        assert!(summary_isomorphic(&inc.summary().graph, &batch.graph));
    }

    #[test]
    fn two_typed_only_nodes_share_ntau_until_data_arrives() {
        let mut inc = IncrementalWeak::new();
        let tau = Term::iri(rdf_model::vocab::RDF_TYPE);
        inc.insert(Term::iri("x"), tau.clone(), Term::iri("C"))
            .unwrap();
        inc.insert(Term::iri("y"), tau.clone(), Term::iri("D"))
            .unwrap();
        let s = inc.summary();
        assert_eq!(s.n_summary_nodes(), 1); // both on Nτ
        assert_eq!(s.graph.types().len(), 2);
        // Now x gets data: x leaves Nτ… but in weak semantics Nτ merging
        // happens through rd, so the batch comparison is authoritative.
        inc.insert(Term::iri("x"), Term::iri("p"), Term::iri("v"))
            .unwrap();
        let batch = weak_summary(inc.graph());
        assert!(summary_isomorphic(&inc.summary().graph, &batch.graph));
    }

    #[test]
    fn schema_triples_pass_through() {
        let mut inc = IncrementalWeak::new();
        inc.insert(
            Term::iri("A"),
            Term::iri(rdf_model::vocab::RDFS_SUBCLASSOF),
            Term::iri("B"),
        )
        .unwrap();
        assert_eq!(inc.summary().graph.schema().len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        let mut inc = IncrementalWeak::new();
        assert!(inc
            .insert(Term::literal("L"), Term::iri("p"), Term::iri("o"))
            .is_err());
    }
}
