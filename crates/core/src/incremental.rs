//! Incremental weak summarization: maintaining `W_G` under triple
//! insertions without rebuilding.
//!
//! The paper's streaming algorithms (§6.2) are one-pass and
//! insertion-order-insensitive, which makes them natural *online*
//! maintenance procedures — the direction the authors later developed into
//! incremental quotient summaries. [`IncrementalWeak`] keeps the streaming
//! state (union–find over summary nodes, the per-property `dpSrc`/`dpTarg`
//! slots, `rd`, and class sets) alive between insertions; a consistent
//! [`crate::Summary`] can be materialized at any point, and is always
//! identical (up to minted-URI naming, which is property-set-derived and
//! thus equal) to the batch weak summary of the triples inserted so far.
//!
//! Deletions are *not* supported: quotient summaries are not decremental
//! (removing a triple can split cliques, which union–find cannot undo);
//! rebuild for that — still cheap, as summarization is linear.
//!
//! Two maintainers live here, for two call sites:
//!
//! * [`IncrementalWeak`] — a self-contained online summarizer that owns its
//!   graph; materializations are *isomorphic* to the batch result (same
//!   structure and property-set-derived names, but node/edge emission
//!   order may differ).
//! * [`WeakDelta`] — the serving layer's patch state. It mirrors the exact
//!   scan state of [`crate::weak::weak_summary`] over a graph owned
//!   elsewhere (a [`rdf_store::TripleStore`]), advances it in O(1) per
//!   inserted triple, and materializes summaries **byte-identical** to a
//!   from-scratch rebuild — so a cached summary can be patched in place of
//!   rebuilding without disturbing content-addressed caching. Deletions
//!   invalidate the state (drop it and rebuild).

use crate::cliques::Cliques;
use crate::naming::n_term;
use crate::summary::{Summary, SummaryKind};
use crate::unionfind::UnionFind;
use rdf_model::{Component, DenseIdMap, FxHashMap, Graph, Term, TermId, Triple, NO_DENSE_ID};
use std::sync::Arc;

/// Patchable weak-summary state: the exact intermediate products of
/// [`crate::weak::weak_summary`]'s two-pass scan, kept alive so that an
/// insert batch advances them in O(batch) instead of O(graph).
///
/// Byte-identity argument: `weak_summary` derives everything from (a) the
/// data properties in first-seen D_G order, (b) the data nodes in first-seen
/// D_G order plus typed subjects in T_G order, (c) per-node representative
/// properties, and (d) the two clique union–finds. Appended triples land at
/// the *end* of their component tables, so arrival order equals scan order
/// for all four; and [`UnionFind::dense_components`] numbers cliques by
/// first member, which is insensitive to the union sequence. Replaying the
/// per-triple scan step on each applied insert therefore reproduces,
/// exactly, the state a fresh scan of the mutated graph would build — and
/// [`WeakDelta::summary`] feeds it through the same
/// [`Cliques::from_parts`] → `build_weak` assembly as the batch path.
#[derive(Clone, Debug)]
pub struct WeakDelta {
    /// Data properties, first-seen over D_G (pass 1).
    prop_map: DenseIdMap,
    /// Data nodes (subjects and objects of D_G), first-seen (pass 2).
    data_nodes: DenseIdMap,
    /// Subjects of type triples, in T_G order (pass 2's tail interning).
    typed_subjects: DenseIdMap,
    /// Source/target clique union–finds over dense property ids.
    src_uf: UnionFind,
    tgt_uf: UnionFind,
    /// Term-indexed representative property (first dense prop id seen).
    subj_repr: Vec<u32>,
    obj_repr: Vec<u32>,
}

impl WeakDelta {
    /// Builds the state from an existing graph — one O(|G|) scan, identical
    /// to the one `weak_summary` would run.
    pub fn from_graph(g: &Graph) -> Self {
        let n_terms = g.dict().len();
        let mut delta = WeakDelta {
            prop_map: DenseIdMap::with_capacity(n_terms),
            data_nodes: DenseIdMap::with_capacity(n_terms),
            typed_subjects: DenseIdMap::with_capacity(n_terms),
            src_uf: UnionFind::new(0),
            tgt_uf: UnionFind::new(0),
            subj_repr: vec![NO_DENSE_ID; n_terms],
            obj_repr: vec![NO_DENSE_ID; n_terms],
        };
        for &t in g.data() {
            delta.apply_data(t);
        }
        for &t in g.types() {
            delta.typed_subjects.intern(t.s);
        }
        delta
    }

    /// Advances the state over a batch of triples that were *genuinely
    /// inserted* into `g` (duplicates already excluded — feed it
    /// `BatchOutcome::applied`). O(batch) amortized. `g` must already hold
    /// the batch.
    pub fn apply_inserts(&mut self, g: &Graph, applied: &[Triple]) {
        self.grow(g.dict().len());
        for &t in applied {
            match g.component_of(t) {
                Component::Data => self.apply_data(t),
                Component::Type => {
                    self.typed_subjects.intern(t.s);
                }
                // Schema triples are copied verbatim from `g` at
                // materialization; no scan state to maintain.
                Component::Schema => {}
            }
        }
    }

    fn grow(&mut self, n_terms: usize) {
        self.prop_map.grow(n_terms);
        self.data_nodes.grow(n_terms);
        self.typed_subjects.grow(n_terms);
        if n_terms > self.subj_repr.len() {
            self.subj_repr.resize(n_terms, NO_DENSE_ID);
            self.obj_repr.resize(n_terms, NO_DENSE_ID);
        }
    }

    /// One data-triple scan step — the loop body of `weak_summary` pass 2,
    /// with pass 1's property interning folded in (first-seen order over
    /// D_G is preserved because inserts append to D_G).
    fn apply_data(&mut self, t: Triple) {
        let pi = self.prop_map.intern(t.p);
        if pi as usize == self.src_uf.len() {
            self.src_uf.push();
            self.tgt_uf.push();
        }
        self.data_nodes.intern(t.s);
        self.data_nodes.intern(t.o);
        let slot = &mut self.subj_repr[t.s.index()];
        if *slot == NO_DENSE_ID {
            *slot = pi;
        } else {
            self.src_uf.union(pi as usize, *slot as usize);
        }
        let slot = &mut self.obj_repr[t.o.index()];
        if *slot == NO_DENSE_ID {
            *slot = pi;
        } else {
            self.tgt_uf.union(pi as usize, *slot as usize);
        }
    }

    /// Materializes the weak summary of `g` from the maintained state —
    /// byte-identical to `weak_summary(g)` (asserted by the patched-vs-
    /// rebuilt test suite). `g` must be the graph the state has tracked.
    pub fn summary(&self, g: &Graph) -> Summary {
        let mut state = self.clone();
        state.grow(g.dict().len());
        let WeakDelta {
            prop_map,
            mut data_nodes,
            typed_subjects,
            src_uf,
            tgt_uf,
            subj_repr,
            obj_repr,
        } = state;
        let (_, props) = prop_map.into_parts();
        // Node numbering: data nodes first, then typed-only subjects — the
        // order `weak_summary`'s single node map accumulates them.
        for &s in typed_subjects.items() {
            data_nodes.intern(s);
        }
        let cliques = Cliques::from_parts(&props, src_uf, tgt_uf, subj_repr, obj_repr);
        crate::weak::build_weak(g, &cliques, data_nodes.items(), &props, false, 0)
    }
}

/// An online weak summarizer.
#[derive(Debug)]
pub struct IncrementalWeak {
    /// The accumulated input graph (owned; also the dictionary).
    graph: Graph,
    /// Union–find over summary node ids.
    uf: UnionFind,
    /// `rd`: G node → summary node id.
    rd: FxHashMap<TermId, usize>,
    /// `dpSrc` / `dpTarg`: per-property source/target summary node.
    dp_src: FxHashMap<TermId, usize>,
    dp_targ: FxHashMap<TermId, usize>,
    /// `dtp`: property → current (source, target) summary ids.
    dtp: FxHashMap<TermId, (usize, usize)>,
    /// Classes per summary node id (`dcls`).
    dcls: FxHashMap<usize, Vec<TermId>>,
    /// Number of insertions processed (for instrumentation).
    inserted: usize,
}

impl Default for IncrementalWeak {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalWeak {
    /// An empty summarizer.
    pub fn new() -> Self {
        IncrementalWeak {
            graph: Graph::new(),
            uf: UnionFind::new(0),
            rd: FxHashMap::default(),
            dp_src: FxHashMap::default(),
            dp_targ: FxHashMap::default(),
            dtp: FxHashMap::default(),
            dcls: FxHashMap::default(),
            inserted: 0,
        }
    }

    /// Starts from an existing graph (bulk phase), then stays incremental.
    pub fn from_graph(g: &Graph) -> Self {
        let mut inc = Self::new();
        for t in g.iter() {
            let s = g.dict().decode(t.s).clone();
            let p = g.dict().decode(t.p).clone();
            let o = g.dict().decode(t.o).clone();
            inc.insert(s, p, o).expect("re-inserting a valid graph");
        }
        inc
    }

    /// The accumulated input graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of triples inserted so far (including duplicates).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    fn get(&mut self, r: TermId, p: TermId, source_side: bool) -> usize {
        let dp = if source_side {
            &mut self.dp_src
        } else {
            &mut self.dp_targ
        };
        let slot = dp.get(&p).map(|&d| self.uf.find(d));
        let node = self.rd.get(&r).copied().map(|d| self.uf.find(d));
        match (slot, node) {
            (None, None) => {
                let d = self.uf.push();
                self.rd.insert(r, d);
                dp.insert(p, d);
                d
            }
            (Some(du), None) => {
                self.rd.insert(r, du);
                du
            }
            (None, Some(ds)) => {
                dp.insert(p, ds);
                ds
            }
            (Some(du), Some(ds)) => {
                if du == ds {
                    ds
                } else {
                    let survivor = self.uf.union(du, ds);
                    // Merge class sets of the fused nodes.
                    let loser = if survivor == du { ds } else { du };
                    if let Some(mut classes) = self.dcls.remove(&loser) {
                        let into = self.dcls.entry(survivor).or_default();
                        classes.retain(|c| !into.contains(c));
                        into.append(&mut classes);
                    }
                    survivor
                }
            }
        }
    }

    /// Inserts one triple (any component), updating the summary state.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> Result<(), rdf_model::ModelError> {
        self.inserted += 1;
        let before = self.graph.len();
        let (t, comp) = self.graph.insert(s, p, o)?;
        if self.graph.len() == before {
            return Ok(()); // duplicate
        }
        match comp {
            Component::Schema => { /* copied verbatim at materialization */ }
            Component::Data => {
                let _ = self.get(t.s, t.p, true);
                let _ = self.get(t.o, t.p, false);
                let src = self.get(t.s, t.p, true);
                let targ = self.get(t.o, t.p, false);
                let src = self.uf.find(src);
                let targ = self.uf.find(targ);
                self.dtp.insert(t.p, (src, targ));
            }
            Component::Type => {
                // A typed-only subject gets its *own* union–find node; the
                // Nτ coalescing happens only at materialization. Eagerly
                // sharing one node would be wrong: a later data triple can
                // split one typed-only resource away from the others, and
                // union–find cannot un-merge.
                let d = match self.rd.get(&t.s).copied() {
                    Some(d) => self.uf.find(d),
                    None => {
                        let d = self.uf.push();
                        self.rd.insert(t.s, d);
                        d
                    }
                };
                let v = self.dcls.entry(d).or_default();
                if !v.contains(&t.o) {
                    v.push(t.o);
                }
            }
        }
        Ok(())
    }

    /// Materializes the current weak summary.
    ///
    /// Equal (same URIs and triples) to `weak_summary(self.graph())`.
    pub fn summary(&mut self) -> Summary {
        // Per-root in/out property sets from the dp slots.
        let mut in_props: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
        let mut out_props: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
        let dp_targ: Vec<(TermId, usize)> = self.dp_targ.iter().map(|(&p, &d)| (p, d)).collect();
        for (p, d) in dp_targ {
            in_props.entry(self.uf.find(d)).or_default().push(p);
        }
        let dp_src: Vec<(TermId, usize)> = self.dp_src.iter().map(|(&p, &d)| (p, d)).collect();
        for (p, d) in dp_src {
            out_props.entry(self.uf.find(d)).or_default().push(p);
        }

        let mut h = Graph::new();
        let mut h_node: FxHashMap<usize, TermId> = FxHashMap::default();
        let mut roots: Vec<usize> = self.rd.values().map(|&d| self.uf.find_const(d)).collect();
        roots.sort_unstable();
        roots.dedup();
        for root in roots {
            // Prop-less roots are exactly the typed-only resources; they
            // all coalesce onto Nτ here: `n_term(∅, ∅)` normalizes to the
            // structurally-equal Nτ key, so every such root encodes to
            // one summary node. Names mint symbolically (shared `Arc`
            // set keys, lazily rendered) and each root mints once, so
            // pointer-identity coincides with name identity — rendered
            // output is byte-identical to the old eager strings.
            let tc = in_props.get(&root).cloned().unwrap_or_default();
            let sc = out_props.get(&root).cloned().unwrap_or_default();
            let name = n_term(self.graph.dict(), &tc, &sc);
            h_node.insert(root, h.dict_mut().encode(name));
        }

        // Constants transfer dictionary-to-dictionary as shared `Arc`s.
        let dict = self.graph.dict();
        let transfer =
            |h: &mut Graph, id: TermId| h.dict_mut().encode_shared(Arc::clone(dict.shared(id)));
        for t in self.graph.schema() {
            let s = transfer(&mut h, t.s);
            let p = transfer(&mut h, t.p);
            let o = transfer(&mut h, t.o);
            h.insert_encoded(Triple::new(s, p, o));
        }
        for (&p, &(s, o)) in &self.dtp {
            let s = h_node[&self.uf.find_const(s)];
            let o = h_node[&self.uf.find_const(o)];
            let p = transfer(&mut h, p);
            h.insert_encoded(Triple::new(s, p, o));
        }
        let tau = h.rdf_type();
        for (&d, classes) in &self.dcls {
            let s = h_node[&self.uf.find_const(d)];
            for &c in classes {
                let c = transfer(&mut h, c);
                h.insert_encoded(Triple::new(s, tau, c));
            }
        }

        let node_map: FxHashMap<TermId, TermId> = self
            .rd
            .iter()
            .map(|(&r, &d)| (r, h_node[&self.uf.find_const(d)]))
            .collect();
        Summary::new(SummaryKind::Weak, h, node_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_graph;
    use crate::iso::summary_isomorphic;
    use crate::weak::weak_summary;
    use rdf_io::write_graph;

    fn canonical(g: &Graph) -> Vec<String> {
        let mut v: Vec<String> = write_graph(g).lines().map(String::from).collect();
        v.sort();
        v
    }

    #[test]
    fn matches_batch_after_bulk_load() {
        let g = sample_graph();
        let mut inc = IncrementalWeak::from_graph(&g);
        let batch = weak_summary(&g);
        assert_eq!(canonical(&inc.summary().graph), canonical(&batch.graph));
    }

    #[test]
    fn matches_batch_at_every_prefix() {
        let g = sample_graph();
        let triples: Vec<(Term, Term, Term)> = g
            .iter()
            .map(|t| {
                (
                    g.dict().decode(t.s).clone(),
                    g.dict().decode(t.p).clone(),
                    g.dict().decode(t.o).clone(),
                )
            })
            .collect();
        let mut inc = IncrementalWeak::new();
        let mut prefix = Graph::new();
        for (s, p, o) in triples {
            inc.insert(s.clone(), p.clone(), o.clone()).unwrap();
            prefix.insert(s, p, o).unwrap();
            let batch = weak_summary(&prefix);
            assert!(
                summary_isomorphic(&inc.summary().graph, &batch.graph),
                "diverged at {} triples",
                prefix.len()
            );
        }
    }

    #[test]
    fn duplicates_are_noops() {
        let mut inc = IncrementalWeak::new();
        for _ in 0..3 {
            inc.insert(Term::iri("a"), Term::iri("p"), Term::iri("b"))
                .unwrap();
        }
        assert_eq!(inc.graph().len(), 1);
        assert_eq!(inc.inserted(), 3);
        assert_eq!(inc.summary().graph.data().len(), 1);
    }

    #[test]
    fn typed_only_then_data_promotion() {
        // A node first seen typed-only (on Nτ) later gains a data property:
        // the summary must re-home it, matching the batch result.
        let mut inc = IncrementalWeak::new();
        inc.insert(
            Term::iri("x"),
            Term::iri(rdf_model::vocab::RDF_TYPE),
            Term::iri("C"),
        )
        .unwrap();
        let s1 = inc.summary();
        assert_eq!(s1.graph.types().len(), 1);
        inc.insert(Term::iri("x"), Term::iri("p"), Term::iri("y"))
            .unwrap();
        let batch = weak_summary(inc.graph());
        assert!(summary_isomorphic(&inc.summary().graph, &batch.graph));
    }

    #[test]
    fn two_typed_only_nodes_share_ntau_until_data_arrives() {
        let mut inc = IncrementalWeak::new();
        let tau = Term::iri(rdf_model::vocab::RDF_TYPE);
        inc.insert(Term::iri("x"), tau.clone(), Term::iri("C"))
            .unwrap();
        inc.insert(Term::iri("y"), tau.clone(), Term::iri("D"))
            .unwrap();
        let s = inc.summary();
        assert_eq!(s.n_summary_nodes(), 1); // both on Nτ
        assert_eq!(s.graph.types().len(), 2);
        // Now x gets data: x leaves Nτ… but in weak semantics Nτ merging
        // happens through rd, so the batch comparison is authoritative.
        inc.insert(Term::iri("x"), Term::iri("p"), Term::iri("v"))
            .unwrap();
        let batch = weak_summary(inc.graph());
        assert!(summary_isomorphic(&inc.summary().graph, &batch.graph));
    }

    #[test]
    fn schema_triples_pass_through() {
        let mut inc = IncrementalWeak::new();
        inc.insert(
            Term::iri("A"),
            Term::iri(rdf_model::vocab::RDFS_SUBCLASSOF),
            Term::iri("B"),
        )
        .unwrap();
        assert_eq!(inc.summary().graph.schema().len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        let mut inc = IncrementalWeak::new();
        assert!(inc
            .insert(Term::literal("L"), Term::iri("p"), Term::iri("o"))
            .is_err());
    }

    /// [`WeakDelta`] materializations are byte-identical (not merely
    /// isomorphic) to a fresh `weak_summary` of the same graph, at every
    /// prefix of the insert stream — the property the serving layer's
    /// summary-patching rests on.
    #[test]
    fn weak_delta_is_byte_identical_at_every_prefix() {
        let g = sample_graph();
        let triples: Vec<(Term, Term, Term)> = g
            .iter()
            .map(|t| {
                (
                    g.dict().decode(t.s).clone(),
                    g.dict().decode(t.p).clone(),
                    g.dict().decode(t.o).clone(),
                )
            })
            .collect();
        let mut live = Graph::new();
        let mut delta = WeakDelta::from_graph(&live);
        for (s, p, o) in triples {
            let before = live.len();
            let (t, _) = live.insert(s, p, o).unwrap();
            if live.len() > before {
                delta.apply_inserts(&live, &[t]);
            }
            let patched = delta.summary(&live);
            let fresh = weak_summary(&live);
            assert_eq!(
                write_graph(&patched.graph),
                write_graph(&fresh.graph),
                "diverged at {} triples",
                live.len()
            );
        }
    }

    /// Batch application (several triples per `apply_inserts` call, mixed
    /// components, duplicates pre-filtered) also stays byte-identical, and
    /// `from_graph` on the final graph agrees with the maintained state.
    #[test]
    fn weak_delta_batched_matches_from_graph() {
        let g = crate::fixtures::figure5_graph();
        let triples: Vec<(Term, Term, Term)> = g
            .iter()
            .map(|t| {
                (
                    g.dict().decode(t.s).clone(),
                    g.dict().decode(t.p).clone(),
                    g.dict().decode(t.o).clone(),
                )
            })
            .collect();
        let mut live = Graph::new();
        let mut delta = WeakDelta::from_graph(&live);
        for chunk in triples.chunks(3) {
            let mut applied = Vec::new();
            for (s, p, o) in chunk {
                let before = live.len();
                let (t, _) = live.insert(s.clone(), p.clone(), o.clone()).unwrap();
                if live.len() > before {
                    applied.push(t);
                }
            }
            delta.apply_inserts(&live, &applied);
        }
        let patched = delta.summary(&live);
        let fresh = weak_summary(&live);
        let rebuilt = WeakDelta::from_graph(&live).summary(&live);
        assert_eq!(write_graph(&patched.graph), write_graph(&fresh.graph));
        assert_eq!(write_graph(&rebuilt.graph), write_graph(&fresh.graph));
    }

    /// Typed-only subjects that later gain data properties keep the patched
    /// output byte-identical (the node-numbering tail is order-sensitive).
    #[test]
    fn weak_delta_typed_then_data_stays_identical() {
        let tau = Term::iri(rdf_model::vocab::RDF_TYPE);
        let mut live = Graph::new();
        let mut delta = WeakDelta::from_graph(&live);
        let steps: Vec<(Term, Term, Term)> = vec![
            (Term::iri("x"), tau.clone(), Term::iri("C")),
            (Term::iri("y"), tau.clone(), Term::iri("D")),
            (Term::iri("x"), Term::iri("p"), Term::iri("v")),
            (Term::iri("z"), Term::iri("p"), Term::iri("x")),
            (
                Term::iri("A"),
                Term::iri(rdf_model::vocab::RDFS_SUBCLASSOF),
                Term::iri("B"),
            ),
        ];
        for (s, p, o) in steps {
            let (t, _) = live.insert(s, p, o).unwrap();
            delta.apply_inserts(&live, &[t]);
            assert_eq!(
                write_graph(&delta.summary(&live).graph),
                write_graph(&weak_summary(&live).graph),
            );
        }
    }
}
