//! Summary-derived cardinality estimation for BGP join planning.
//!
//! In the spirit of Stefanoni, Motik & Kostylev (*Estimating the
//! Cardinality of Conjunctive Queries over RDF Data Using Graph
//! Summarisation*): a quotient summary already groups the data nodes by
//! structure, and its extent sizes are per-group node counts — enough to
//! estimate, per property, how many **distinct** subjects and objects it
//! connects, without ever scanning the full graph. [`SummaryCardinality`]
//! precomputes those figures in one pass over the (tiny) summary at build
//! time; [`SummaryEstimator`] then implements
//! [`rdf_query::JoinEstimator`], replacing the planner's blind
//! unbound-form counts: a pattern whose variables were bound by earlier
//! join steps is charged its expected matches *per binding* (exact triple
//! count ÷ summary-estimated distinct values), so `EXPLAIN`-style static
//! plans order joins the way the runtime greedy evaluator actually would.
//!
//! The per-pattern **base** count stays the store's exact constant-form
//! count (two binary searches), so a zero estimate still implies true
//! emptiness and [`rdf_query::Plan::provably_empty`] stays sound; only
//! the bound-slot *divisors* come from the summary.

use crate::summary::{Summary, SummaryKind};
use rdf_model::{FxHashMap, FxHashSet, TermId};
use rdf_query::{Atom, CompiledPattern, JoinEstimator};
use rdf_store::{TriplePattern, TripleStore};

/// Per-property figures, keyed by the *summarized graph's* dictionary id
/// (queries are compiled against `G`, so lookups use `G` ids).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PropertyCard {
    /// Exact number of `G` triples with this property.
    pub triples: usize,
    /// Estimated distinct subjects (sum of the subject summary nodes'
    /// extent sizes — an upper bound on the true distinct count).
    pub subjects: usize,
    /// Estimated distinct objects (same construction on the object side).
    pub objects: usize,
}

/// Summary-derived statistics for one `(graph, summary)` pair.
#[derive(Clone, Debug)]
pub struct SummaryCardinality {
    kind: SummaryKind,
    props: FxHashMap<TermId, PropertyCard>,
    /// `G` class id → estimated instance count (extent sizes of the
    /// summary nodes typed with the class).
    classes: FxHashMap<TermId, usize>,
    /// Represented `G` data nodes.
    n_data_nodes: usize,
}

impl SummaryCardinality {
    /// Builds the statistics: one pass over the summary's edges plus one
    /// exact [`TripleStore::count`] per distinct property.
    pub fn new(store: &TripleStore, summary: &Summary) -> Self {
        let h = &summary.graph;
        let g = store.graph();
        // H term → G term (properties, classes, and schema nodes keep
        // their URIs through summarization, so the lookup succeeds for
        // everything we index here).
        let mut g_of: FxHashMap<TermId, Option<TermId>> = FxHashMap::default();
        let mut g_id = |h_id: TermId| -> Option<TermId> {
            *g_of
                .entry(h_id)
                .or_insert_with(|| g.dict().lookup(h.dict().decode(h_id)))
        };
        // Schema nodes represent themselves; data nodes carry extents.
        let weight = |n: TermId| summary.extent(n).len().max(1);

        let mut subj_nodes: FxHashMap<TermId, FxHashSet<TermId>> = FxHashMap::default();
        let mut obj_nodes: FxHashMap<TermId, FxHashSet<TermId>> = FxHashMap::default();
        for t in h.data().iter().chain(h.schema()) {
            let Some(p) = g_id(t.p) else { continue };
            subj_nodes.entry(p).or_default().insert(t.s);
            obj_nodes.entry(p).or_default().insert(t.o);
        }
        // τ edges: the property is rdf:type; objects are class URIs.
        let mut tau_subjects: FxHashSet<TermId> = FxHashSet::default();
        let mut class_nodes: FxHashMap<TermId, FxHashSet<TermId>> = FxHashMap::default();
        for t in h.types() {
            tau_subjects.insert(t.s);
            if let Some(c) = g_id(t.o) {
                class_nodes.entry(c).or_default().insert(t.s);
            }
        }

        let mut props: FxHashMap<TermId, PropertyCard> = FxHashMap::default();
        for (p, subjects) in subj_nodes {
            let objects = obj_nodes.remove(&p).unwrap_or_default();
            props.insert(
                p,
                PropertyCard {
                    triples: store.count(TriplePattern::new(None, Some(p), None)),
                    subjects: subjects.iter().map(|&n| weight(n)).sum(),
                    objects: objects.iter().map(|&n| weight(n)).sum(),
                },
            );
        }
        if !tau_subjects.is_empty() {
            let tau = g.rdf_type();
            props.insert(
                tau,
                PropertyCard {
                    triples: store.count(TriplePattern::new(None, Some(tau), None)),
                    subjects: tau_subjects.iter().map(|&n| weight(n)).sum(),
                    objects: class_nodes.len(),
                },
            );
        }
        let classes = class_nodes
            .into_iter()
            .map(|(c, nodes)| (c, nodes.iter().map(|&n| weight(n)).sum()))
            .collect();
        SummaryCardinality {
            kind: summary.kind,
            props,
            classes,
            n_data_nodes: summary.n_represented(),
        }
    }

    /// The summary kind the statistics were derived from.
    pub fn kind(&self) -> SummaryKind {
        self.kind
    }

    /// Per-property figures, if the property occurs in the graph.
    pub fn property(&self, p: TermId) -> Option<PropertyCard> {
        self.props.get(&p).copied()
    }

    /// Estimated instances of a class (`G` dictionary id).
    pub fn class_instances(&self, c: TermId) -> Option<usize> {
        self.classes.get(&c).copied()
    }

    /// Number of represented `G` data nodes.
    pub fn n_data_nodes(&self) -> usize {
        self.n_data_nodes
    }

    /// Number of distinct properties (τ included when typed).
    pub fn n_properties(&self) -> usize {
        self.props.len()
    }

    /// Reassembles statistics from persisted figures — the inverse of the
    /// [`Self::iter_properties`]/[`Self::iter_classes`] decomposition,
    /// used by the summary-artifact persistence codec.
    pub fn from_parts(
        kind: SummaryKind,
        props: FxHashMap<TermId, PropertyCard>,
        classes: FxHashMap<TermId, usize>,
        n_data_nodes: usize,
    ) -> Self {
        SummaryCardinality {
            kind,
            props,
            classes,
            n_data_nodes,
        }
    }

    /// All per-property figures, in arbitrary order.
    pub fn iter_properties(&self) -> impl Iterator<Item = (TermId, PropertyCard)> + '_ {
        self.props.iter().map(|(&p, &card)| (p, card))
    }

    /// All per-class instance estimates, in arbitrary order.
    pub fn iter_classes(&self) -> impl Iterator<Item = (TermId, usize)> + '_ {
        self.classes.iter().map(|(&c, &n)| (c, n))
    }
}

/// A [`JoinEstimator`] pairing the summary statistics with the graph's
/// store (for exact base counts). Borrow-cheap: build one per query.
pub struct SummaryEstimator<'a> {
    store: &'a TripleStore,
    card: &'a SummaryCardinality,
}

impl<'a> SummaryEstimator<'a> {
    /// Creates an estimator for queries compiled against `store`'s graph.
    pub fn new(store: &'a TripleStore, card: &'a SummaryCardinality) -> Self {
        SummaryEstimator { store, card }
    }
}

impl JoinEstimator for SummaryEstimator<'_> {
    fn estimate(&self, p: &CompiledPattern, bound: &[bool]) -> Option<usize> {
        let slot = |a: Atom| match a {
            Atom::Const(None) => None, // unmatchable
            Atom::Const(Some(c)) => Some(Some(c)),
            Atom::Var(_) => Some(None),
        };
        let tp = TriplePattern::new(slot(p.s)?, slot(p.p)?, slot(p.o)?);
        let total = self.store.count(tp);
        let is_bound = |a: Atom| matches!(a, Atom::Var(v) if bound[v]);
        let (bs, bp, bo) = (is_bound(p.s), is_bound(p.p), is_bound(p.o));
        if total == 0 || !(bs || bp || bo) {
            return Some(total);
        }
        let prop = match p.p {
            Atom::Const(Some(c)) => self.card.property(c),
            _ => None,
        };
        let tau_class = match (p.p, p.o) {
            // (?x, τ, C): a bound subject ranges over C's instances.
            (Atom::Const(Some(pc)), Atom::Const(Some(oc)))
                if pc == self.store.graph().rdf_type() =>
            {
                self.card.class_instances(oc)
            }
            _ => None,
        };
        let mut divisor = 1usize;
        if bs {
            let d = tau_class
                .or(prop.map(|c| c.subjects))
                .unwrap_or(self.card.n_data_nodes());
            divisor = divisor.saturating_mul(d.max(1));
        }
        if bp {
            divisor = divisor.saturating_mul(self.card.n_properties().max(1));
        }
        if bo {
            let d = prop.map(|c| c.objects).unwrap_or(self.card.n_data_nodes());
            divisor = divisor.saturating_mul(d.max(1));
        }
        // Never report 0 for a matchable pattern: zero is reserved for
        // provable emptiness.
        Some(total.div_ceil(divisor).clamp(1, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use rdf_model::{vocab, Graph};
    use rdf_query::{compile, explain_with, QuerySpec, SpecTerm};

    fn v(n: &str) -> SpecTerm {
        SpecTerm::var(n)
    }

    fn iri(s: &str) -> SpecTerm {
        SpecTerm::iri(s)
    }

    fn library() -> Graph {
        let mut g = Graph::new();
        for i in 0..20 {
            g.add_iri_triple(&format!("b{i}"), vocab::RDF_TYPE, "Book");
            g.add_iri_triple(&format!("b{i}"), "author", &format!("a{i}"));
        }
        g.add_iri_triple("b0", "cites", "b1");
        g
    }

    #[test]
    fn per_property_figures_from_the_summary() {
        let g = library();
        let summary = builder::summarize(&g, SummaryKind::Weak);
        let store = TripleStore::new(g);
        let card = SummaryCardinality::new(&store, &summary);
        let author = store
            .graph()
            .dict()
            .lookup(&rdf_model::Term::iri("author"))
            .unwrap();
        let pc = card.property(author).unwrap();
        assert_eq!(pc.triples, 20, "base counts are exact");
        assert!(pc.subjects >= 20, "extent sums cover all true subjects");
        let book = store
            .graph()
            .dict()
            .lookup(&rdf_model::Term::iri("Book"))
            .unwrap();
        assert!(card.class_instances(book).unwrap() >= 20);
        assert!(card.n_data_nodes() > 0);
        assert_eq!(card.kind(), SummaryKind::Weak);
    }

    #[test]
    fn estimator_divides_by_bound_slots() {
        let g = library();
        let summary = builder::summarize(&g, SummaryKind::Weak);
        let store = TripleStore::new(g);
        let card = SummaryCardinality::new(&store, &summary);
        let est = SummaryEstimator::new(&store, &card);
        let spec = QuerySpec::new(Vec::<String>::new(), [(v("x"), iri("author"), v("y"))]);
        let q = compile(&spec, store.graph()).unwrap();
        let unbound = est.estimate(&q.body[0], &vec![false; q.n_vars()]).unwrap();
        assert_eq!(unbound, 20);
        let mut bound = vec![false; q.n_vars()];
        bound[0] = true; // ?x bound by an earlier step
        let per_binding = est.estimate(&q.body[0], &bound).unwrap();
        assert!(per_binding <= 2, "20 triples / ≥20 subjects ≈ 1");
        assert!(per_binding >= 1);
    }

    #[test]
    fn summary_plan_matches_store_plan_shape() {
        let g = library();
        let summary = builder::summarize(&g, SummaryKind::TypedWeak);
        let store = TripleStore::new(g);
        let card = SummaryCardinality::new(&store, &summary);
        let spec = QuerySpec::new(
            ["y"],
            [
                (v("x"), iri(vocab::RDF_TYPE), iri("Book")),
                (v("x"), iri("cites"), v("z")),
                (v("x"), iri("author"), v("y")),
            ],
        );
        let q = compile(&spec, store.graph()).unwrap();
        let plan = explain_with(&q, &SummaryEstimator::new(&store, &card));
        assert!(!plan.provably_empty);
        // `cites` (1 triple) first; the remaining joins are charged their
        // per-binding cost, not their raw counts.
        assert_eq!(plan.steps[0].pattern_index, 1);
        assert!(plan.steps[1].estimated_matches <= 2);
        assert!(plan.steps[2].estimated_matches <= 2);
        // The order drives the evaluator unchanged.
        let ev = rdf_query::Evaluator::new(&store);
        let rs = ev.select_limit_ordered(&q, &plan.order(), usize::MAX);
        assert_eq!(rs.len(), ev.select(&q).len());
    }

    #[test]
    fn zero_estimates_only_for_true_emptiness() {
        let g = library();
        let summary = builder::summarize(&g, SummaryKind::Weak);
        let store = TripleStore::new(g);
        let card = SummaryCardinality::new(&store, &summary);
        let est = SummaryEstimator::new(&store, &card);
        let spec = QuerySpec::new(Vec::<String>::new(), [(v("x"), iri("author"), v("y"))]);
        let q = compile(&spec, store.graph()).unwrap();
        for mask in 0..4u8 {
            let mut bound = vec![false; q.n_vars()];
            bound[0] = mask & 1 != 0;
            bound[1] = mask & 2 != 0;
            let e = est.estimate(&q.body[0], &bound).unwrap();
            assert!(e >= 1, "author matches exist; estimate must stay ≥ 1");
        }
    }
}
