//! The [`Summary`] type: an RDF graph `H_G` plus the node correspondence
//! with the summarized graph.
//!
//! Definition 9 of the paper: `H_G = ⟨D_H, S_H, T_H⟩` where the schema is
//! copied verbatim and `T_H ∪ D_H` is the quotient of `T_G ∪ D_G` by a node
//! equivalence. The correspondence maps are the paper's `rd` (graph node →
//! summary node) and `dr` (summary node → represented nodes) structures
//! from §6.1.

use rdf_model::{FxHashMap, Graph, GraphStats, TermId, NO_DENSE_ID};

/// Which of the paper's summaries a [`Summary`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SummaryKind {
    /// W_G — weak summary (Definition 11).
    Weak,
    /// S_G — strong summary (Definition 15).
    Strong,
    /// TW_G — typed weak summary (Definition 14).
    TypedWeak,
    /// TS_G — typed strong summary (Definition 17).
    TypedStrong,
    /// T_G — type-based summary (Definition 12), a building block of the
    /// typed summaries that is also useful on its own.
    TypeBased,
    /// A forward–backward bisimulation quotient — the related-work
    /// baseline of §8, for size comparisons (see [`crate::bisim`]).
    Bisimulation,
}

impl SummaryKind {
    /// All four principal summaries, in the paper's presentation order.
    pub const ALL: [SummaryKind; 4] = [
        SummaryKind::Weak,
        SummaryKind::Strong,
        SummaryKind::TypedWeak,
        SummaryKind::TypedStrong,
    ];

    /// The paper's notation for this summary.
    pub fn notation(self) -> &'static str {
        match self {
            SummaryKind::Weak => "W",
            SummaryKind::Strong => "S",
            SummaryKind::TypedWeak => "TW",
            SummaryKind::TypedStrong => "TS",
            SummaryKind::TypeBased => "T",
            SummaryKind::Bisimulation => "FB",
        }
    }
}

impl std::fmt::Display for SummaryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.notation())
    }
}

/// Size figures for a summary, matching the series of Figures 11 and 12.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Data nodes of H (Figure 11, top).
    pub data_nodes: usize,
    /// Class nodes of H.
    pub class_nodes: usize,
    /// All nodes of H (Figure 11, bottom).
    pub all_nodes: usize,
    /// Data edges |D_H|_e (Figure 12, top).
    pub data_edges: usize,
    /// Type edges |T_H|_e.
    pub type_edges: usize,
    /// Schema edges |S_H|_e.
    pub schema_edges: usize,
    /// All edges |H|_e (Figure 12, bottom).
    pub all_edges: usize,
}

impl SummaryStats {
    /// Measures a summary graph.
    pub fn of(h: &Graph) -> Self {
        let st = GraphStats::of(h);
        SummaryStats {
            data_nodes: st.data_nodes,
            class_nodes: st.class_nodes,
            all_nodes: st.nodes,
            data_edges: st.data_edges,
            type_edges: st.type_edges,
            schema_edges: st.schema_edges,
            all_edges: st.edges,
        }
    }
}

/// A summary `H_G` of some graph `G`, with the node correspondence.
///
/// Both correspondence directions are dense `Vec`-indexed tables (the
/// `rd` side keyed by the G dictionary id, the `dr` side by the H
/// dictionary id), so lookups are array reads — part of the dense
/// summarization pipeline. The `dr` side is a CSR layout (one offsets
/// table plus one flat member array) rather than a `Vec` per H term, so
/// building it costs two flat passes and zero per-node heap allocations —
/// which matters for the type-based summaries, where class counts run
/// into the thousands.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Which summary this is.
    pub kind: SummaryKind,
    /// The summary RDF graph (its own dictionary).
    pub graph: Graph,
    /// `rd`: G-term-indexed → H node id, [`NO_DENSE_ID`] if unrepresented.
    node_of: Vec<u32>,
    /// `dr` offsets: H-term-indexed into [`Summary::extent_members`]
    /// (`len = H dictionary len + 1`).
    extent_offsets: Vec<u32>,
    /// `dr` members: each H term's represented G data nodes, sorted,
    /// concatenated in H id order.
    extent_members: Vec<TermId>,
    /// Distinct H representatives (non-empty extents).
    n_nodes: usize,
}

impl Summary {
    /// Creates a summary from a hash-map correspondence (used by builders
    /// that accumulate the map incrementally, e.g. streaming).
    pub(crate) fn new(
        kind: SummaryKind,
        graph: Graph,
        node_map: FxHashMap<TermId, TermId>,
    ) -> Self {
        let n_g_terms = node_map.keys().map(|k| k.index() + 1).max().unwrap_or(0);
        let mut node_of = vec![NO_DENSE_ID; n_g_terms];
        let mut pairs: Vec<(u32, TermId)> = Vec::with_capacity(node_map.len());
        for (&gn, &hn) in &node_map {
            node_of[gn.index()] = hn.0;
            pairs.push((hn.0, gn));
        }
        Self::finish(kind, graph, node_of, &pairs, 0)
    }

    /// Creates a summary straight from a partition and its class → H node
    /// assignment: the dense fast path used by the quotient operator (no
    /// per-node hashing). `threads` shapes the extent-table construction
    /// (`0` = auto; the quotient passes its emission worker count so
    /// sharded builds ride the same ranges end to end).
    pub(crate) fn from_quotient(
        kind: SummaryKind,
        graph: Graph,
        partition: &crate::equivalence::Partition,
        class_node: &[TermId],
        n_g_terms: usize,
        threads: usize,
    ) -> Self {
        let mut node_of = vec![NO_DENSE_ID; n_g_terms];
        let mut pairs: Vec<(u32, TermId)> = Vec::with_capacity(partition.n_members());
        for (c, members) in partition.classes.iter().enumerate() {
            let hn = class_node[c];
            for &n in members {
                node_of[n.index()] = hn.0;
                pairs.push((hn.0, n));
            }
        }
        Self::finish(kind, graph, node_of, &pairs, threads)
    }

    /// Builds the CSR extent table from `(H id, G node)` pairs. Each G
    /// node maps to exactly one H node (`node_of` is a function), so the
    /// rows need sorting but never deduplication.
    ///
    /// The counting pass is a serial sweep (scattered row increments);
    /// the member scatter and the per-row sorts split across row ranges
    /// (`threads` workers; `0` resolves through the emission threshold) —
    /// bit-identical to the serial build, since the scatter preserves
    /// pair order per row and the sorts canonicalize each row anyway.
    fn finish(
        kind: SummaryKind,
        graph: Graph,
        node_of: Vec<u32>,
        pairs: &[(u32, TermId)],
        threads: usize,
    ) -> Self {
        let threads = if threads == 0 {
            crate::parallel::substrate_threads(
                pairs.len(),
                crate::parallel::PARALLEL_EMIT_THRESHOLD,
            )
        } else {
            threads
        };
        let n_h = graph.dict().len();
        let mut deg = vec![0u32; n_h];
        for &(h, _) in pairs {
            deg[h as usize] += 1;
        }
        let n_nodes = deg.iter().filter(|&&d| d > 0).count();
        let (extent_offsets, mut extent_members) =
            crate::context::fill_csr_values(&deg, pairs, threads, TermId(0));
        crate::context::sort_csr_rows(&extent_offsets, &mut extent_members, threads);
        Summary {
            kind,
            graph,
            node_of,
            extent_offsets,
            extent_members,
            n_nodes,
        }
    }

    /// The summary node representing a G data node (`rd` lookup).
    pub fn representative(&self, g_node: TermId) -> Option<TermId> {
        match self.node_of.get(g_node.index()) {
            Some(&h) if h != NO_DENSE_ID => Some(TermId(h)),
            _ => None,
        }
    }

    /// The G data nodes represented by a summary node (`dr` lookup),
    /// sorted by id; empty for nodes that represent nothing (class nodes).
    pub fn extent(&self, h_node: TermId) -> &[TermId] {
        let i = h_node.index();
        if i + 1 >= self.extent_offsets.len() {
            return &[];
        }
        &self.extent_members[self.extent_offsets[i] as usize..self.extent_offsets[i + 1] as usize]
    }

    /// Number of summary data nodes (distinct representatives).
    pub fn n_summary_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of represented G data nodes.
    pub fn n_represented(&self) -> usize {
        self.extent_members.len()
    }

    /// Size statistics (Figures 11/12 series).
    pub fn stats(&self) -> SummaryStats {
        SummaryStats::of(&self.graph)
    }

    /// The compression ratio `|H|_e / |G|_e` against a given input size.
    pub fn compression_ratio(&self, input_edges: usize) -> f64 {
        if input_edges == 0 {
            return 0.0;
        }
        self.graph.len() as f64 / input_edges as f64
    }

    /// Well-formedness of the correspondence: every represented node maps
    /// into an existing extent, extents partition the represented nodes.
    pub fn check_correspondence_invariants(&self) -> bool {
        let covered = self.node_of.iter().filter(|&&h| h != NO_DENSE_ID).count();
        covered == self.n_represented()
            && self.node_of.iter().enumerate().all(|(i, &h)| {
                h == NO_DENSE_ID
                    || self
                        .extent(TermId(h))
                        .binary_search(&TermId(i as u32))
                        .is_ok()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_notation() {
        assert_eq!(SummaryKind::Weak.to_string(), "W");
        assert_eq!(SummaryKind::TypedStrong.to_string(), "TS");
        assert_eq!(SummaryKind::ALL.len(), 4);
    }

    #[test]
    fn correspondence_roundtrip() {
        let mut node_map = FxHashMap::default();
        node_map.insert(TermId(10), TermId(0));
        node_map.insert(TermId(11), TermId(0));
        node_map.insert(TermId(12), TermId(1));
        let s = Summary::new(SummaryKind::Weak, Graph::new(), node_map);
        assert_eq!(s.representative(TermId(10)), Some(TermId(0)));
        assert_eq!(s.extent(TermId(0)), &[TermId(10), TermId(11)]);
        assert_eq!(s.extent(TermId(1)), &[TermId(12)]);
        assert_eq!(s.extent(TermId(9)), &[] as &[TermId]);
        assert_eq!(s.n_summary_nodes(), 2);
        assert_eq!(s.n_represented(), 3);
        assert!(s.check_correspondence_invariants());
    }

    #[test]
    fn stats_of_empty() {
        let s = SummaryStats::of(&Graph::new());
        assert_eq!(s, SummaryStats::default());
    }

    #[test]
    fn compression_ratio() {
        let s = Summary::new(SummaryKind::Weak, Graph::new(), FxHashMap::default());
        assert_eq!(s.compression_ratio(0), 0.0);
        assert_eq!(s.compression_ratio(100), 0.0);
    }
}
