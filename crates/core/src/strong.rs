//! The strong summary S_G — Definition 15 of the paper.
//!
//! The quotient of G by strong equivalence ≡S: data nodes are represented
//! together iff they have the *same source clique and the same target
//! clique*. There is a bijection between occupied (target clique, source
//! clique) pairs and strong summary nodes, written `N^{TC}_{SC}`.
//!
//! Unlike the weak summary, S_G may carry several edges with the same
//! property label (§5.1), since the sources of a property may be split
//! across several (TC, SC) pairs.

use crate::context::SummaryContext;
use crate::summary::Summary;
use rdf_model::Graph;

/// Builds the strong summary of `g` (batch, clique-based).
///
/// Thin wrapper over a throwaway [`SummaryContext`]; to build several
/// summaries of the same graph, create one context and reuse it.
pub fn strong_summary(g: &Graph) -> Summary {
    SummaryContext::new(g).strong_summary()
}

/// Upper bounds from §5.1: the strong summary has at most
/// `min(|D_G|_n, (|D_G|⁰_e)²)` data nodes. Returns `true` when they hold.
pub fn check_size_bounds(g: &Graph, summary: &Summary) -> bool {
    let n_props = g.data_properties().len();
    let data_nodes_g = {
        let mut set = rdf_model::FxHashSet::default();
        for t in g.data() {
            set.insert(t.s);
            set.insert(t.o);
        }
        set.len()
    };
    let bound = data_nodes_g.min((n_props * n_props).max(1));
    // +1 allows the Nτ node, which represents typed-only resources that are
    // not data nodes of D_G.
    summary.stats().data_nodes <= bound + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{exid, sample_graph};
    use crate::naming::display_label;
    use crate::quotient::verify_quotient;
    use rdf_model::{Term, TermId};

    fn label_of(s: &Summary, g: &Graph, local: &str) -> String {
        let h_node = s.representative(exid(g, local)).unwrap();
        display_label(s.graph.dict().decode(h_node).as_iri().unwrap())
    }

    /// Figure 9: the strong summary of the running example.
    #[test]
    fn figure9_strong_summary() {
        let g = sample_graph();
        let s = strong_summary(&g);
        assert!(verify_quotient(&g, &s));
        // Classes: {r1,r2,r3,r5} {r4} {a1} {a2} {t1..4} {e1} {e2} {c1} {r6}.
        assert_eq!(s.n_summary_nodes(), 9);
        let st = s.stats();
        assert_eq!(st.class_nodes, 3);
        assert_eq!(st.all_nodes, 12);
        // Data edges (see DESIGN.md §3): 9.
        assert_eq!(st.data_edges, 9);
        assert_eq!(st.type_edges, 4);
    }

    /// §5.1: "the strong summary refines (splits) the weak summary node
    /// N^{r,p}_{a,t,e,c} into two nodes", and both emit an author edge.
    #[test]
    fn figure9_split_and_duplicate_labels() {
        let g = sample_graph();
        let s = strong_summary(&g);
        let n_atec = s.representative(exid(&g, "r1")).unwrap();
        let n_atec_rp = s.representative(exid(&g, "r4")).unwrap();
        assert_ne!(n_atec, n_atec_rp);
        assert_eq!(label_of(&s, &g, "r1"), "N[out=author,comment,editor,title]");
        assert_eq!(
            label_of(&s, &g, "r4"),
            "N[in=published,reviewed][out=author,comment,editor,title]"
        );
        // Two author-labeled edges exist (one from each).
        let author = s
            .graph
            .dict()
            .lookup(&Term::iri(format!("{}author", crate::fixtures::EX)))
            .unwrap();
        let author_edges: Vec<_> = s.graph.data().iter().filter(|t| t.p == author).collect();
        assert_eq!(author_edges.len(), 2);
    }

    /// Figure 9 / §5.1 examples: N(∅, SC1) for r1,r2,r3,r5; N(TC5, SC1)
    /// for r4; N(TC1, SC2) for a1 — and a2/e2 split from a1/e1.
    #[test]
    fn figure9_example_nodes() {
        let g = sample_graph();
        let s = strong_summary(&g);
        for r in ["r2", "r3", "r5"] {
            assert_eq!(
                s.representative(exid(&g, "r1")),
                s.representative(exid(&g, r))
            );
        }
        assert_eq!(label_of(&s, &g, "a1"), "N[in=author][out=reviewed]");
        assert_eq!(label_of(&s, &g, "a2"), "N[in=author]");
        assert_eq!(label_of(&s, &g, "e1"), "N[in=editor][out=published]");
        assert_eq!(label_of(&s, &g, "e2"), "N[in=editor]");
        assert_ne!(
            s.representative(exid(&g, "a1")),
            s.representative(exid(&g, "a2"))
        );
        // t1..t4 still together (same ∅/TC2 signature).
        for t in ["t2", "t3", "t4"] {
            assert_eq!(
                s.representative(exid(&g, "t1")),
                s.representative(exid(&g, t))
            );
        }
        // r6 → Nτ.
        assert_eq!(label_of(&s, &g, "r6"), "Nτ");
    }

    /// τ edges of Figure 9: Book/Journal/Spec off N_{a,t,e,c}, Spec off Nτ.
    #[test]
    fn figure9_type_edges() {
        let g = sample_graph();
        let s = strong_summary(&g);
        let h = &s.graph;
        let tau = h.rdf_type();
        let big = s.representative(exid(&g, "r1")).unwrap();
        let ntau = s.representative(exid(&g, "r6")).unwrap();
        let class = |name: &str| {
            h.dict()
                .lookup(&Term::iri(format!("{}{}", crate::fixtures::EX, name)))
                .unwrap()
        };
        let has = |s: TermId, o: TermId| h.contains(rdf_model::Triple::new(s, tau, o));
        assert!(has(big, class("Book")));
        assert!(has(big, class("Journal")));
        assert!(has(big, class("Spec")));
        assert!(has(ntau, class("Spec")));
    }

    #[test]
    fn size_bounds_hold() {
        let g = sample_graph();
        let s = strong_summary(&g);
        assert!(check_size_bounds(&g, &s));
    }

    #[test]
    fn strong_of_empty_graph() {
        let g = Graph::new();
        let s = strong_summary(&g);
        assert!(s.graph.is_empty());
    }

    /// Strong never merges nodes with different signatures, so on a graph
    /// where all subjects share a source clique but have distinct target
    /// cliques, each subject stays separate.
    #[test]
    fn strong_splits_by_target() {
        let mut g = Graph::new();
        // x and y share source clique {p,q} (via chains), but x is a target
        // of r while y is not.
        g.add_iri_triple("x", "p", "v1");
        g.add_iri_triple("y", "p", "v2");
        g.add_iri_triple("w", "r", "x");
        let s = strong_summary(&g);
        let x = g.dict().lookup(&Term::iri("x")).unwrap();
        let y = g.dict().lookup(&Term::iri("y")).unwrap();
        assert_ne!(s.representative(x), s.representative(y));
        // The weak summary would merge them.
        let w = crate::weak::weak_summary(&g);
        assert_eq!(w.representative(x), w.representative(y));
    }
}
