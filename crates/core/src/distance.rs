//! Property distance within a clique — Definition 6 of the paper.
//!
//! The distance between data properties `p` and `p'` in a source clique is 0
//! when some resource has both, and otherwise the smallest `n` such that
//! resources r0 … rn and properties p1 … pn exist with r0 having {p, p1},
//! r1 having {p1, p2}, …, rn having {pn, p'}. Symmetrically for target
//! cliques over property *values*.
//!
//! We build the "co-occurrence graph" whose vertices are data properties,
//! with an edge between two properties iff some resource has (is a value
//! of) both; the distance of Definition 6 is then `BFS hops − 1`, and two
//! properties are in the same clique iff they are connected.

use rdf_model::{FxHashMap, FxHashSet, Graph, TermId};
use std::collections::VecDeque;

/// Which side of Definition 5/6 to measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Source relatedness: resources *having* the properties.
    Source,
    /// Target relatedness: resources being *values of* the properties.
    Target,
}

/// The property co-occurrence graph for one side.
#[derive(Clone, Debug)]
pub struct CooccurrenceGraph {
    adj: FxHashMap<TermId, FxHashSet<TermId>>,
}

impl CooccurrenceGraph {
    /// Builds the co-occurrence graph of `g`'s data properties.
    pub fn build(g: &Graph, side: Side) -> Self {
        // Group the properties of each anchor resource.
        let mut by_anchor: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        for t in g.data() {
            let anchor = match side {
                Side::Source => t.s,
                Side::Target => t.o,
            };
            let v = by_anchor.entry(anchor).or_default();
            if !v.contains(&t.p) {
                v.push(t.p);
            }
        }
        let mut adj: FxHashMap<TermId, FxHashSet<TermId>> = FxHashMap::default();
        for t in g.data() {
            adj.entry(t.p).or_default();
        }
        for props in by_anchor.values() {
            for i in 0..props.len() {
                for j in (i + 1)..props.len() {
                    adj.entry(props[i]).or_default().insert(props[j]);
                    adj.entry(props[j]).or_default().insert(props[i]);
                }
            }
        }
        CooccurrenceGraph { adj }
    }

    /// The Definition 6 distance between `p` and `q`; `None` when the
    /// properties are in different cliques (or unknown). `p == q` gives 0.
    pub fn distance(&self, p: TermId, q: TermId) -> Option<usize> {
        if !self.adj.contains_key(&p) || !self.adj.contains_key(&q) {
            return None;
        }
        if p == q {
            return Some(0);
        }
        // BFS counting hops; Definition 6 distance = hops − 1.
        let mut seen: FxHashSet<TermId> = FxHashSet::default();
        let mut queue: VecDeque<(TermId, usize)> = VecDeque::new();
        seen.insert(p);
        queue.push_back((p, 0));
        while let Some((node, hops)) = queue.pop_front() {
            for &next in &self.adj[&node] {
                if next == q {
                    return Some(hops); // (hops+1) edges − 1
                }
                if seen.insert(next) {
                    queue.push_back((next, hops + 1));
                }
            }
        }
        None
    }

    /// Are two properties related (same clique)?
    pub fn related(&self, p: TermId, q: TermId) -> bool {
        self.distance(p, q).is_some()
    }

    /// The eccentricity-style maximum distance within `p`'s clique, if any.
    pub fn max_distance_from(&self, p: TermId) -> Option<usize> {
        let mut best = None;
        let keys: Vec<TermId> = self.adj.keys().copied().collect();
        for q in keys {
            if q != p {
                if let Some(d) = self.distance(p, q) {
                    best = Some(best.map_or(d, |b: usize| b.max(d)));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{exid, sample_graph};

    /// §3.1: "the distance between a and t is 0 … between a and e is 1 …
    /// between a and c is 2."
    #[test]
    fn paper_distances() {
        let g = sample_graph();
        let co = CooccurrenceGraph::build(&g, Side::Source);
        let a = exid(&g, "author");
        let t = exid(&g, "title");
        let e = exid(&g, "editor");
        let c = exid(&g, "comment");
        assert_eq!(co.distance(a, t), Some(0));
        assert_eq!(co.distance(a, e), Some(1));
        assert_eq!(co.distance(a, c), Some(2));
        // Symmetry.
        assert_eq!(co.distance(c, a), Some(2));
    }

    #[test]
    fn unrelated_properties_have_no_distance() {
        let g = sample_graph();
        let co = CooccurrenceGraph::build(&g, Side::Source);
        let a = exid(&g, "author");
        let r = exid(&g, "reviewed");
        assert_eq!(co.distance(a, r), None);
        assert!(!co.related(a, r));
    }

    #[test]
    fn target_side_distances() {
        let g = sample_graph();
        let co = CooccurrenceGraph::build(&g, Side::Target);
        let r = exid(&g, "reviewed");
        let p = exid(&g, "published");
        // r4 is the value of both ⇒ distance 0.
        assert_eq!(co.distance(r, p), Some(0));
        let a = exid(&g, "author");
        assert_eq!(co.distance(a, r), None);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let g = sample_graph();
        let co = CooccurrenceGraph::build(&g, Side::Source);
        let a = exid(&g, "author");
        assert_eq!(co.distance(a, a), Some(0));
    }

    #[test]
    fn unknown_property_is_none() {
        let g = sample_graph();
        let co = CooccurrenceGraph::build(&g, Side::Source);
        let a = exid(&g, "author");
        let bogus = rdf_model::TermId(9999);
        assert_eq!(co.distance(a, bogus), None);
    }

    #[test]
    fn max_distance_within_clique() {
        let g = sample_graph();
        let co = CooccurrenceGraph::build(&g, Side::Source);
        let a = exid(&g, "author");
        // Farthest from author inside SC1 is comment, at distance 2.
        assert_eq!(co.max_distance_from(a), Some(2));
    }

    #[test]
    fn distance_consistent_with_cliques() {
        use crate::cliques::{CliqueScope, Cliques};
        let g = sample_graph();
        let co = CooccurrenceGraph::build(&g, Side::Source);
        let cq = Cliques::compute(&g, CliqueScope::AllNodes);
        let props: Vec<TermId> = g.data_properties().into_iter().collect();
        for &p in &props {
            for &q in &props {
                let same_clique = cq.source_clique_of(p) == cq.source_clique_of(q);
                assert_eq!(co.related(p, q), same_clique, "{p:?} vs {q:?}");
            }
        }
    }
}
