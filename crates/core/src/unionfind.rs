//! Disjoint-set union (union–find) with path halving and union by size.
//!
//! The workhorse behind property-clique computation (Definition 5) and the
//! streaming node-merging of Algorithms 1–3: "merging data nodes that are
//! attached to common properties gradually builds property cliques" (§6.2).

/// A disjoint-set forest over `0..len` with near-constant-time operations.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Adds a fresh singleton, returning its index.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i as u32);
        self.size.push(1);
        self.components += 1;
        i
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p] as usize;
            self.parent[x] = gp as u32;
            x = gp;
        }
    }

    /// Representative without path compression (for `&self` contexts).
    pub fn find_const(&self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns the surviving representative.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        self.components -= 1;
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        big
    }

    /// Are `a` and `b` in the same set?
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Maps every element to a dense component index `0..k` (in order of
    /// first appearance by element index) and returns `(assignment, k)`.
    pub fn dense_components(&mut self) -> (Vec<usize>, usize) {
        let n = self.len();
        let mut dense = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut assignment = vec![0usize; n];
        for (x, slot) in assignment.iter_mut().enumerate() {
            let r = {
                // Inline find: cannot borrow self mutably while iterating.
                let mut y = x;
                loop {
                    let p = self.parent[y] as usize;
                    if p == y {
                        break y;
                    }
                    let gp = self.parent[p] as usize;
                    self.parent[y] = gp as u32;
                    y = gp;
                }
            };
            if dense[r] == usize::MAX {
                dense[r] = next;
                next += 1;
            }
            *slot = dense[r];
        }
        (assignment, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        assert!(uf.same(0, 1));
        assert_eq!(uf.component_count(), 4);
        uf.union(1, 2);
        assert!(uf.same(0, 2));
        assert_eq!(uf.component_count(), 3);
        // Re-union is a no-op.
        uf.union(2, 0);
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn push_grows() {
        let mut uf = UnionFind::new(1);
        let i = uf.push();
        assert_eq!(i, 1);
        assert_eq!(uf.component_count(), 2);
        uf.union(0, 1);
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn dense_components_cover_all() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let (assign, k) = uf.dense_components();
        assert_eq!(k, 4); // {0,3} {1} {2} {4,5}
        assert_eq!(assign[0], assign[3]);
        assert_eq!(assign[4], assign[5]);
        assert_ne!(assign[0], assign[1]);
        // Dense: indices 0..k all used.
        let mut seen: Vec<bool> = vec![false; k];
        for &a in &assign {
            seen[a] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn find_const_agrees_with_find() {
        let mut uf = UnionFind::new(8);
        uf.union(1, 2);
        uf.union(2, 3);
        uf.union(5, 6);
        for i in 0..8 {
            assert_eq!(uf.find_const(i), uf.clone().find(i));
        }
    }

    #[test]
    fn long_chain_compresses() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        for i in 0..1000 {
            assert_eq!(uf.find(i), uf.find(0));
        }
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let (assign, k) = uf.dense_components();
        assert!(assign.is_empty());
        assert_eq!(k, 0);
    }
}
