//! Checkers for the paper's formal properties.
//!
//! * **Fixpoint** (Definition 10, Props. 2/6/9): `H_{H_G} = H_G` — a summary
//!   cannot be summarized further.
//! * **Accuracy** (Prop. 3) follows from the fixpoint property: a summary
//!   is a graph whose own summary is itself, so any query matching `H∞_G`
//!   matches the saturation of a member of its inverse set (namely `H_G`).
//! * **Completeness** (Props. 5/8, and the counter-examples of Props.
//!   7/10): `Σ_{G∞} = Σ_{(Σ_G)∞}` — the summary of the saturation can be
//!   computed by saturating and re-summarizing the (much smaller) summary.
//! * **Representativeness** (Definition 1, Prop. 1): every RBGP query
//!   non-empty on `G∞` is non-empty on `H∞_G`.

use crate::builder::summarize;
use crate::iso::summary_isomorphic;
use crate::summary::{Summary, SummaryKind};
use rdf_model::Graph;
use rdf_query::{compile, Evaluator, QuerySpec};
use rdf_schema::saturate;
use rdf_store::TripleStore;

/// Does the fixpoint property hold for `kind` on `g`? (Σ_{Σ_G} ≅ Σ_G.)
pub fn fixpoint_holds(g: &Graph, kind: SummaryKind) -> bool {
    let h1 = summarize(g, kind);
    let h2 = summarize(&h1.graph, kind);
    summary_isomorphic(&h1.graph, &h2.graph)
}

/// The two sides of a completeness comparison.
#[derive(Debug)]
pub struct CompletenessCheck {
    /// Σ_{G∞}: summarize the saturated graph.
    pub of_saturation: Summary,
    /// Σ_{(Σ_G)∞}: summarize, saturate the summary, summarize again.
    pub shortcut: Summary,
    /// Whether the two coincide (up to renaming of minted nodes).
    pub holds: bool,
}

/// Compares `Σ_{G∞}` with `Σ_{(Σ_G)∞}` for the given summary kind.
///
/// Props. 5 and 8 guarantee `holds` for W and S on every graph; Props. 7
/// and 10 exhibit graphs where TW and TS fail (domain/range rules type
/// previously-untyped resources).
pub fn completeness_check(g: &Graph, kind: SummaryKind) -> CompletenessCheck {
    completeness_checks(g, &[kind])
        .pop()
        .expect("one kind in, one check out")
}

/// [`completeness_check`] for several kinds at once: `g` is saturated
/// *once*, and one shared [`crate::context::SummaryContext`] per side
/// (`G` and `G∞`) serves every kind, so the cliques and dense numbering
/// are computed once instead of once per kind.
pub fn completeness_checks(g: &Graph, kinds: &[SummaryKind]) -> Vec<CompletenessCheck> {
    let sat = saturate(g);
    let sat_ctx = crate::context::SummaryContext::new(&sat);
    let ctx = crate::context::SummaryContext::new(g);
    kinds
        .iter()
        .map(|&kind| {
            let of_saturation = sat_ctx.summarize(kind);
            let first = ctx.summarize(kind);
            let shortcut = summarize(&saturate(&first.graph), kind);
            let holds = summary_isomorphic(&of_saturation.graph, &shortcut.graph);
            CompletenessCheck {
                of_saturation,
                shortcut,
                holds,
            }
        })
        .collect()
}

/// Outcome of a representativeness experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepresentativenessReport {
    /// Queries evaluated.
    pub total: usize,
    /// Queries with answers on G∞ (the premise of Definition 1).
    pub nonempty_on_g: usize,
    /// Among those, queries also non-empty on H∞ (should equal
    /// `nonempty_on_g` by Prop. 1).
    pub held: usize,
    /// Counter-examples, if any (violations of Prop. 1 would indicate an
    /// implementation bug).
    pub violations: Vec<String>,
}

impl RepresentativenessReport {
    /// Did representativeness hold for every applicable query?
    pub fn all_held(&self) -> bool {
        self.held == self.nonempty_on_g
    }
}

/// Evaluates Definition 1 on a fixed query workload: for each query with
/// `q(G∞) ≠ ∅`, checks `q(H∞_G) ≠ ∅`.
pub fn check_representativeness(
    g: &Graph,
    summary: &Summary,
    queries: &[QuerySpec],
) -> RepresentativenessReport {
    let g_store = TripleStore::new(saturate(g));
    let h_store = TripleStore::new(saturate(&summary.graph));
    let g_eval = Evaluator::new(&g_store);
    let h_eval = Evaluator::new(&h_store);
    let mut report = RepresentativenessReport {
        total: queries.len(),
        nonempty_on_g: 0,
        held: 0,
        violations: Vec::new(),
    };
    for q in queries {
        let on_g = compile(q, g_store.graph())
            .map(|cq| g_eval.ask(&cq))
            .unwrap_or(false);
        if !on_g {
            continue;
        }
        report.nonempty_on_g += 1;
        let on_h = compile(q, h_store.graph())
            .map(|cq| h_eval.ask(&cq))
            .unwrap_or(false);
        if on_h {
            report.held += 1;
        } else {
            report.violations.push(q.to_string());
        }
    }
    report
}

/// The contrapositive use of representativeness for query pruning: if a
/// query is empty on the (saturated) summary, it is provably empty on the
/// graph — without touching the graph. Returns `true` when the query can
/// be pruned.
pub fn can_prune(summary: &Summary, query: &QuerySpec) -> bool {
    let h_store = TripleStore::new(saturate(&summary.graph));
    let Ok(cq) = compile(query, h_store.graph()) else {
        return true; // malformed ⇒ no answers anywhere
    };
    !Evaluator::new(&h_store).ask(&cq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure10_graph, figure5_graph, figure8_graph, sample_graph};
    use rdf_query::{sample_rbgp_queries, WorkloadConfig};

    /// Proposition 2: all four summaries have the fixpoint property.
    #[test]
    fn fixpoint_for_all_kinds_on_sample() {
        let g = sample_graph();
        for kind in SummaryKind::ALL {
            assert!(fixpoint_holds(&g, kind), "fixpoint failed for {kind}");
        }
    }

    /// Figure 5 / Proposition 5: weak completeness on the walk-through
    /// graph.
    #[test]
    fn figure5_weak_completeness() {
        let g = figure5_graph();
        let check = completeness_check(&g, SummaryKind::Weak);
        assert!(check.holds);
        // The walk-through's shape: one source node carrying a1,b1,b,b2,c.
        assert_eq!(check.of_saturation.graph.data().len(), 5);
    }

    /// Figure 10 / Proposition 8: strong completeness on the walk-through
    /// graph.
    #[test]
    fn figure10_strong_completeness() {
        let g = figure10_graph();
        let check = completeness_check(&g, SummaryKind::Strong);
        assert!(check.holds);
    }

    /// Figure 8 / Proposition 7: typed-weak non-completeness — the
    /// counter-example must FAIL the check.
    #[test]
    fn figure8_typed_weak_counterexample() {
        let g = figure8_graph();
        let check = completeness_check(&g, SummaryKind::TypedWeak);
        assert!(!check.holds, "TW completeness should fail on Figure 8");
        // Mechanism: TW_{G∞} types r1 (via a ←↩d c), splitting it from r2.
        // TW_{(TW_G)∞} types the already-merged node instead.
        assert_ne!(
            check.of_saturation.graph.data().len(),
            check.shortcut.graph.data().len()
        );
    }

    /// Proposition 10: the same counter-example graph also breaks TS
    /// completeness.
    #[test]
    fn figure8_typed_strong_counterexample() {
        let g = figure8_graph();
        let check = completeness_check(&g, SummaryKind::TypedStrong);
        assert!(!check.holds);
    }

    /// Weak/strong completeness also hold on the running example (which
    /// has no schema, making both sides trivially equal) and on Figure 8's
    /// graph (nontrivial: the schema types resources).
    #[test]
    fn weak_strong_complete_on_more_graphs() {
        for g in [
            sample_graph(),
            figure8_graph(),
            figure5_graph(),
            figure10_graph(),
        ] {
            assert!(completeness_check(&g, SummaryKind::Weak).holds);
            assert!(completeness_check(&g, SummaryKind::Strong).holds);
        }
    }

    /// Proposition 1 on a sampled workload over the running example, for
    /// all four summaries.
    #[test]
    fn representativeness_on_sample_workload() {
        let g = sample_graph();
        let store = TripleStore::new(g.clone());
        let queries = sample_rbgp_queries(
            &store,
            &WorkloadConfig {
                queries: 60,
                patterns_per_query: 3,
                seed: 42,
                ..Default::default()
            },
        );
        for kind in SummaryKind::ALL {
            let s = summarize(&g, kind);
            let rep = check_representativeness(&g, &s, &queries);
            assert!(rep.nonempty_on_g > 0);
            assert!(
                rep.all_held(),
                "representativeness violated for {kind}: {:?}",
                rep.violations
            );
        }
    }

    /// Query pruning: a query over a property absent from the graph is
    /// pruned by the summary; a satisfiable one is not.
    #[test]
    fn pruning_via_summary() {
        use rdf_model::PrefixMap;
        use rdf_query::parse_query;
        let g = sample_graph();
        let s = summarize(&g, SummaryKind::Weak);
        let prefixes = PrefixMap::with_defaults();
        let dead = parse_query("q() :- ?x <http://example.org/price> ?y", &prefixes).unwrap();
        assert!(can_prune(&s, &dead));
        let alive = parse_query(
            "q() :- ?x <http://example.org/author> ?y, ?y <http://example.org/reviewed> ?z",
            &prefixes,
        )
        .unwrap();
        assert!(!can_prune(&s, &alive));
    }
}
