//! The paper's streaming summarization algorithms (§6.2, Algorithms 1–3).
//!
//! Data triples are read one by one; their subject and object are
//! represented by source and target data nodes, "possibly unifying the
//! source and target nodes based on the information newly found". The
//! per-property structures are the ones named in §6.1:
//!
//! * `rd` / `dr` — graph node ↔ summary node correspondence;
//! * `dpSrc` / `dpTarg` — the *one* untyped source (target) summary node of
//!   each data property (footnote 3);
//! * `dtp` — property → summary data triple(s);
//! * `dcls` — summary node → class set.
//!
//! `MERGEDATANODES` is realized with a union–find over summary node ids
//! (union by size — the paper's "replaces the node with less edges" — with
//! identical results since merging is order-insensitive up to naming, and
//! our final node names are derived from property sets, not merge order).
//!
//! The streaming weak builder produces a summary **equal** (same URIs, same
//! triples) to the batch clique-based builder — a strong cross-check both
//! implementations are tested against. The typed-weak variant summarizes
//! type triples first (the paper's TW ordering), then data triples, never
//! merging typed nodes.

use crate::naming::{c_term, n_term};
use crate::summary::{Summary, SummaryKind};
use crate::unionfind::UnionFind;
use rdf_model::{FxHashMap, Graph, Term, TermId, Triple};
use std::sync::Arc;

/// Internal: mutable summarization state shared by the streaming builders.
struct Stream {
    /// Union–find over summary node ids (`MERGEDATANODES`).
    uf: UnionFind,
    /// `rd`: G node → summary node id.
    rd: FxHashMap<TermId, usize>,
}

impl Stream {
    fn new() -> Self {
        Stream {
            uf: UnionFind::new(0),
            rd: FxHashMap::default(),
        }
    }

    /// `CREATEDATANODE`.
    fn create_node(&mut self, r: TermId) -> usize {
        let d = self.uf.push();
        self.rd.insert(r, d);
        d
    }

    /// Resolves a node id to its current representative.
    fn find(&mut self, d: usize) -> usize {
        self.uf.find(d)
    }

    /// `GETSOURCE`/`GETTARGET` (Algorithm 2): unify the per-property slot
    /// `dp` with the node representing resource `r`.
    fn get(&mut self, r: TermId, dp: &mut FxHashMap<TermId, usize>, p: TermId) -> usize {
        let slot = dp.get(&p).map(|&d| self.uf.find(d));
        let node = self.rd.get(&r).copied().map(|d| self.uf.find(d));
        match (slot, node) {
            (None, None) => {
                let d = self.create_node(r);
                dp.insert(p, d);
                d
            }
            (Some(du), None) => {
                self.rd.insert(r, du);
                du
            }
            (None, Some(ds)) => {
                dp.insert(p, ds);
                ds
            }
            (Some(du), Some(ds)) => {
                if du == ds {
                    ds
                } else {
                    // MERGEDATANODES.
                    self.uf.union(du, ds)
                }
            }
        }
    }
}

/// Builds the weak summary by the paper's streaming algorithm.
pub fn streaming_weak_summary(g: &Graph) -> Summary {
    let mut st = Stream::new();
    let mut dp_src: FxHashMap<TermId, usize> = FxHashMap::default();
    let mut dp_targ: FxHashMap<TermId, usize> = FxHashMap::default();

    // ---- Algorithm 1: summarize data triples ----
    // dtp: property → (source node, target node); Prop. 4 guarantees one
    // data triple per property in W_G.
    let mut dtp: FxHashMap<TermId, (usize, usize)> = FxHashMap::default();
    for t in g.data() {
        let _ = st.get(t.s, &mut dp_src, t.p);
        let _ = st.get(t.o, &mut dp_targ, t.p);
        // "GETTARGET may have modified src and vice-versa" (Algorithm 1,
        // lines 5–7): re-resolve both.
        let src = st.get(t.s, &mut dp_src, t.p);
        let targ = st.get(t.o, &mut dp_targ, t.p);
        let src = st.find(src);
        let targ = st.find(targ);
        dtp.insert(t.p, (src, targ));
    }

    // ---- Algorithm 3: summarize type triples ----
    // dcls: summary node → classes; typed-only resources share one node.
    let mut dcls: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
    let mut typed_only_node: Option<usize> = None;
    for t in g.types() {
        let d = match st.rd.get(&t.s).copied() {
            Some(d) => st.find(d),
            None => {
                // REPRESENTTYPEDONLY: one node for all typed-only resources.
                let d = *typed_only_node.get_or_insert_with(|| st.uf.push());
                st.rd.insert(t.s, d);
                d
            }
        };
        let v = dcls.entry(d).or_default();
        if !v.contains(&t.o) {
            v.push(t.o);
        }
    }

    assemble(
        g,
        SummaryKind::Weak,
        st,
        &dp_src,
        &dp_targ,
        dtp.iter().map(|(&p, &(s, o))| (s, p, o)).collect(),
        dcls,
        typed_only_node,
        None,
    )
}

/// Builds the typed weak summary by the paper's type-first streaming
/// algorithm: type triples are summarized first (class-set nodes), then
/// data triples, where "only untyped data nodes may be merged" (§6.1).
pub fn streaming_typed_weak_summary(g: &Graph) -> Summary {
    let mut st = Stream::new();
    let mut dp_src: FxHashMap<TermId, usize> = FxHashMap::default();
    let mut dp_targ: FxHashMap<TermId, usize> = FxHashMap::default();

    // ---- Type triples first: group by class set (clsd) ----
    let sets = crate::equivalence::class_sets(g);
    let mut clsd: FxHashMap<Vec<TermId>, usize> = FxHashMap::default();
    let mut dcls: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
    for (&r, cs) in &sets {
        let d = *clsd.entry(cs.clone()).or_insert_with(|| st.uf.push());
        st.rd.insert(r, d);
        dcls.entry(d).or_insert_with(|| cs.clone());
    }

    // ---- Data triples; typed endpoints resolve to their class-set node
    // and do not touch dpSrc/dpTarg ----
    let mut dtp: rdf_model::FxHashSet<(usize, TermId, usize)> = Default::default();
    let mut edges: Vec<(usize, TermId, usize)> = Vec::new();
    for t in g.data() {
        let src = if sets.contains_key(&t.s) {
            st.find(st.rd[&t.s])
        } else {
            st.get(t.s, &mut dp_src, t.p)
        };
        let targ = if sets.contains_key(&t.o) {
            st.find(st.rd[&t.o])
        } else {
            st.get(t.o, &mut dp_targ, t.p)
        };
        let src = st.find(src);
        let targ = st.find(targ);
        if dtp.insert((src, t.p, targ)) {
            edges.push((src, t.p, targ));
        }
    }

    assemble(
        g,
        SummaryKind::TypedWeak,
        st,
        &dp_src,
        &dp_targ,
        edges,
        dcls.clone(),
        None,
        Some(dcls),
    )
}

/// Final assembly: resolve union–find roots, derive deterministic node
/// names from the per-property slots, and emit the summary graph.
#[allow(clippy::too_many_arguments)]
fn assemble(
    g: &Graph,
    kind: SummaryKind,
    mut st: Stream,
    dp_src: &FxHashMap<TermId, usize>,
    dp_targ: &FxHashMap<TermId, usize>,
    edges: Vec<(usize, TermId, usize)>,
    dcls: FxHashMap<usize, Vec<TermId>>,
    typed_only_node: Option<usize>,
    class_named: Option<FxHashMap<usize, Vec<TermId>>>,
) -> Summary {
    // Per-root property sets: dpTarg contributes "in", dpSrc "out".
    let mut in_props: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
    let mut out_props: FxHashMap<usize, Vec<TermId>> = FxHashMap::default();
    for (&p, &d) in dp_targ {
        in_props.entry(st.find(d)).or_default().push(p);
    }
    for (&p, &d) in dp_src {
        out_props.entry(st.find(d)).or_default().push(p);
    }

    // Name each root, minting symbolically: `n_term`/`c_term` return
    // `Term::Minted` set keys (shared `Arc`s into G's dictionary) whose
    // URIs render lazily — and byte-identically to the old eager strings.
    // Each root mints exactly once, so minted pointer-identity coincides
    // with name identity (`Nτ` keys are structurally equal by design).
    let name_of = |root: usize, st: &Stream| -> Term {
        if let Some(named) = &class_named {
            // Typed-weak: class-set nodes are C(X); others are N(in, out).
            if let Some(cs) = named.get(&root) {
                return c_term(g.dict(), cs);
            }
        } else if typed_only_node.map(|d| st.uf.find_const(d)) == Some(root) {
            return n_term(g.dict(), &[], &[]); // normalizes to Nτ
        }
        let tc = in_props.get(&root).cloned().unwrap_or_default();
        let sc = out_props.get(&root).cloned().unwrap_or_default();
        n_term(g.dict(), &tc, &sc)
    };

    let mut h = Graph::new();
    let mut h_node: FxHashMap<usize, TermId> = FxHashMap::default();
    let roots: Vec<usize> = {
        let mut r: Vec<usize> = st.rd.values().map(|&d| st.uf.find_const(d)).collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    for root in roots {
        let id = h.dict_mut().encode(name_of(root, &st));
        h_node.insert(root, id);
    }

    // Constants transfer dictionary-to-dictionary as shared `Arc`s.
    let transfer = |h: &mut Graph, id: TermId| -> TermId {
        h.dict_mut().encode_shared(Arc::clone(g.dict().shared(id)))
    };
    // Schema copied verbatim.
    for t in g.schema() {
        let s = transfer(&mut h, t.s);
        let p = transfer(&mut h, t.p);
        let o = transfer(&mut h, t.o);
        h.insert_encoded(Triple::new(s, p, o));
    }
    // Data edges.
    for (s, p, o) in edges {
        let s = h_node[&st.uf.find_const(s)];
        let o = h_node[&st.uf.find_const(o)];
        let p = transfer(&mut h, p);
        h.insert_encoded(Triple::new(s, p, o));
    }
    // Type edges.
    let tau = h.rdf_type();
    for (d, classes) in dcls {
        let s = h_node[&st.uf.find_const(d)];
        for c in classes {
            let c = transfer(&mut h, c);
            h.insert_encoded(Triple::new(s, tau, c));
        }
    }

    // rd as TermId → H TermId.
    let node_map: FxHashMap<TermId, TermId> = st
        .rd
        .iter()
        .map(|(&r, &d)| (r, h_node[&st.uf.find_const(d)]))
        .collect();
    Summary::new(kind, h, node_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_graph;
    use crate::typed::typed_weak_summary;
    use crate::weak::weak_summary;
    use rdf_io::write_graph;

    /// The streaming and batch weak builders produce the *same* summary
    /// (same URIs, same triples) — the naming is property-set-derived in
    /// both.
    #[test]
    fn streaming_equals_batch_weak_on_sample() {
        let g = sample_graph();
        let a = weak_summary(&g);
        let b = streaming_weak_summary(&g);
        let mut la: Vec<String> = write_graph(&a.graph).lines().map(String::from).collect();
        let mut lb: Vec<String> = write_graph(&b.graph).lines().map(String::from).collect();
        la.sort();
        lb.sort();
        assert_eq!(la, lb);
    }

    #[test]
    fn streaming_equals_batch_typed_weak_on_sample() {
        let g = sample_graph();
        let a = typed_weak_summary(&g);
        let b = streaming_typed_weak_summary(&g);
        let mut la: Vec<String> = write_graph(&a.graph).lines().map(String::from).collect();
        let mut lb: Vec<String> = write_graph(&b.graph).lines().map(String::from).collect();
        la.sort();
        lb.sort();
        assert_eq!(la, lb);
    }

    #[test]
    fn streaming_weak_handles_schema_and_typed_only() {
        let g = crate::fixtures::figure5_graph();
        let s = streaming_weak_summary(&g);
        assert_eq!(s.graph.schema().len(), 2);
        let g = sample_graph();
        let s = streaming_weak_summary(&g);
        assert_eq!(s.stats().type_edges, 4);
    }

    #[test]
    fn streaming_on_empty_graph() {
        let g = Graph::new();
        let s = streaming_weak_summary(&g);
        assert!(s.graph.is_empty());
        let s = streaming_typed_weak_summary(&g);
        assert!(s.graph.is_empty());
    }

    /// Order-insensitivity: scanning the data triples in reverse produces
    /// the same summary (names are derived from property sets, not merge
    /// order).
    #[test]
    fn insertion_order_does_not_matter() {
        let g = sample_graph();
        let mut rev = Graph::new();
        let triples: Vec<_> = g.iter().collect();
        for t in triples.iter().rev() {
            let s = g.dict().decode(t.s).clone();
            let p = g.dict().decode(t.p).clone();
            let o = g.dict().decode(t.o).clone();
            rev.insert(s, p, o).unwrap();
        }
        let a = streaming_weak_summary(&g);
        let b = streaming_weak_summary(&rev);
        let mut la: Vec<String> = write_graph(&a.graph).lines().map(String::from).collect();
        let mut lb: Vec<String> = write_graph(&b.graph).lines().map(String::from).collect();
        la.sort();
        lb.sort();
        assert_eq!(la, lb);
    }
}
