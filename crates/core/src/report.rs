//! Human-readable summary reports: the "first-level user interface" use
//! case of the paper's introduction.

use crate::naming::display_label;
use crate::summary::Summary;
use rdf_model::{PrefixMap, Term, TermId};
use std::fmt::Write as _;

/// Options for [`render_report`].
#[derive(Clone, Debug, Default)]
pub struct ReportOptions {
    /// Prefixes for compacting IRIs.
    pub prefixes: PrefixMap,
    /// Show at most this many example members per summary node (0 = none).
    pub examples_per_node: usize,
}

fn short(prefixes: &PrefixMap, term: &Term) -> String {
    // `as_iri` also covers minted summary terms (rendered lazily).
    match term.as_iri() {
        Some(iri) => display_label(&prefixes.compact(iri)),
        None => term.to_string(),
    }
}

/// Renders a text report of a summary: per-node extents (with optional
/// example members decoded from the source graph) and the edge list.
pub fn render_report(summary: &Summary, source: &rdf_model::Graph, opts: &ReportOptions) -> String {
    let h = &summary.graph;
    let mut out = String::new();
    let st = summary.stats();
    let _ = writeln!(
        out,
        "{} summary: {} nodes ({} data, {} class) / {} edges ({} data, {} type, {} schema)",
        summary.kind,
        st.all_nodes,
        st.data_nodes,
        st.class_nodes,
        st.all_edges,
        st.data_edges,
        st.type_edges,
        st.schema_edges
    );

    // Nodes, largest extent first.
    let mut nodes: Vec<(TermId, usize)> = h
        .data_nodes()
        .into_iter()
        .map(|n| (n, summary.extent(n).len()))
        .collect();
    nodes.sort_by_key(|&(n, count)| (std::cmp::Reverse(count), n));
    let _ = writeln!(out, "\nnodes (by extent):");
    for (n, count) in nodes {
        let label = short(&opts.prefixes, h.dict().decode(n));
        let _ = write!(out, "  {label:<60} x{count}");
        if opts.examples_per_node > 0 && count > 0 {
            let sample: Vec<String> = summary
                .extent(n)
                .iter()
                .take(opts.examples_per_node)
                .map(|&m| short(&opts.prefixes, source.dict().decode(m)))
                .collect();
            let _ = write!(out, "   e.g. {}", sample.join(", "));
        }
        out.push('\n');
    }

    let _ = writeln!(out, "\nedges:");
    for t in h.data() {
        let _ = writeln!(
            out,
            "  {} --{}--> {}",
            short(&opts.prefixes, h.dict().decode(t.s)),
            short(&opts.prefixes, h.dict().decode(t.p)),
            short(&opts.prefixes, h.dict().decode(t.o)),
        );
    }
    for t in h.types() {
        let _ = writeln!(
            out,
            "  {} --τ--> {}",
            short(&opts.prefixes, h.dict().decode(t.s)),
            short(&opts.prefixes, h.dict().decode(t.o)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{sample_graph, sample_prefixes};
    use crate::weak::weak_summary;

    #[test]
    fn report_contains_labels_and_counts() {
        let g = sample_graph();
        let w = weak_summary(&g);
        let report = render_report(
            &w,
            &g,
            &ReportOptions {
                prefixes: sample_prefixes(),
                examples_per_node: 2,
            },
        );
        assert!(report.contains("W summary"));
        assert!(report.contains("x5")); // the big node represents r1..r5
        assert!(report.contains("e.g."));
        assert!(report.contains("--τ-->"));
        assert!(report.contains("Nτ"));
    }

    #[test]
    fn report_without_examples() {
        let g = sample_graph();
        let w = weak_summary(&g);
        let report = render_report(&w, &g, &ReportOptions::default());
        assert!(!report.contains("e.g."));
    }
}
