//! Generic quotient-graph construction — Definitions 4 and 9 of the paper.
//!
//! Given a graph `G` and a partition of its data nodes, the summary is the
//! RDF graph with:
//!
//! * **SCH** — the same schema triples as `G` (copied verbatim);
//! * **TYP+DAT** — one node per partition class, an edge
//!   `n_{S1} --p--> n_{S2}` iff some `n1 ∈ S1`, `n2 ∈ S2` with
//!   `n1 --p--> n2 ∈ G`, and a τ edge `n_S --τ--> c` iff some member of `S`
//!   has type `c`. Class nodes and property URIs keep their identity.
//!
//! The summary graph gets its own dictionary; the `class_term` callback is
//! the *minted-key provider*: it returns the [`Term`] naming each
//! partition class (the paper's representation functions `N` / `C`). The
//! production builders hand back symbolic [`Term::Minted`] keys (see
//! [`crate::naming`]), so no URI string is allocated or hashed anywhere in
//! this construction; tests and ad-hoc callers may return plain
//! [`Term::Iri`]s.

use crate::equivalence::Partition;
use crate::summary::{Summary, SummaryKind};
use rdf_model::{Graph, Term, TermId, Triple, NO_DENSE_ID};
use std::sync::Arc;

/// Builds the quotient summary of `g` under `partition`.
///
/// `partition` must cover every data node of `g` (subjects/objects of D_G
/// and subjects of T_G); `class_term(i, members)` must return a distinct
/// term per class `i`.
///
/// The hot translation loops do `Vec`-indexed reads only: the node → class
/// map is the partition's dense array, and the cross-dictionary constant
/// cache is a flat table keyed by the G dictionary id. Constants transfer
/// between dictionaries as shared `Arc`s
/// ([`rdf_model::Dictionary::encode_shared`]), never copying string data.
///
/// # Panics
/// Panics when the partition misses a data node.
pub fn quotient_summary(
    g: &Graph,
    kind: SummaryKind,
    partition: &Partition,
    class_term: impl FnMut(usize, &[TermId]) -> Term,
) -> Summary {
    quotient_summary_impl(g, kind, partition, class_term, false, 0)
}

/// How the quotient's data component is derived.
pub(crate) enum DataPlan<'a> {
    /// Scan every data triple of `G` and dedup the quotiented copies —
    /// the generic path.
    Scan,
    /// The data edges are already known per class pair: emit exactly
    /// `(class, G property, class)` once each. The weak summary uses this
    /// (Proposition 4: all sources of a property are weakly equivalent,
    /// and so are all its targets, so `W_G` has exactly one edge per
    /// distinct property — derivable from the cliques without touching
    /// the `O(|D_G|)` triples again).
    Edges(&'a [(u32, TermId, u32)]),
}

/// [`quotient_summary`] with an explicit switch forcing the non-packable
/// (hash-dedup) emission path — the seam the packed-vs-fallback
/// equivalence tests drive directly, since exceeding the 21-bit id bound
/// organically needs a >2M-term dictionary.
pub(crate) fn quotient_summary_impl(
    g: &Graph,
    kind: SummaryKind,
    partition: &Partition,
    class_term: impl FnMut(usize, &[TermId]) -> Term,
    force_unpacked: bool,
    emit_threads: usize,
) -> Summary {
    quotient_summary_planned(
        g,
        kind,
        partition,
        class_term,
        DataPlan::Scan,
        force_unpacked,
        emit_threads,
    )
}

/// The full-control quotient constructor: emission plan for the data
/// component plus the packed/unpacked switch.
///
/// `emit_threads` shapes the packed emission of the quotiented triples:
/// `0` is the auto policy (shard-range emission above
/// [`crate::parallel::PARALLEL_EMIT_THRESHOLD`] input triples, fused and
/// sequential below), an explicit count is honored regardless of input
/// size. Sharded contexts pass their shard count through here so the
/// emission rides the same ranges as the substrate build — and so the
/// forced-shard suites cover the parallel emission on fixture-sized
/// graphs. Both paths emit bit-identical triples: the parallel one
/// transfers dictionary constants in a sequential scan-order pre-pass
/// (identical H ids), then packs per-chunk into disjoint buffers and
/// reduces with [`crate::parallel::merge_dedup_runs`].
pub(crate) fn quotient_summary_planned(
    g: &Graph,
    kind: SummaryKind,
    partition: &Partition,
    mut class_term: impl FnMut(usize, &[TermId]) -> Term,
    data_plan: DataPlan<'_>,
    force_unpacked: bool,
    emit_threads: usize,
) -> Summary {
    let emit_workers = |n: usize| -> usize {
        if emit_threads == 0 {
            crate::parallel::substrate_threads(n, crate::parallel::PARALLEL_EMIT_THRESHOLD)
        } else {
            emit_threads.clamp(1, 256)
        }
    };
    let mut h = Graph::new();

    // H node per partition class.
    let mut class_node: Vec<TermId> = Vec::with_capacity(partition.classes.len());
    for (i, members) in partition.classes.iter().enumerate() {
        class_node.push(h.dict_mut().encode(class_term(i, members)));
    }
    // Minted-key seam: naming + interning the class nodes must stay fully
    // symbolic — rendering here would put a String allocation back on the
    // per-class hot path.
    #[cfg(debug_assertions)]
    for &cn in &class_node {
        if let Term::Minted(m) = h.dict().decode(cn) {
            debug_assert!(
                !m.is_rendered(),
                "minted class node rendered its URI during quotient construction"
            );
        }
    }

    // Cross-dictionary cache for constants that keep their identity
    // (properties, class URIs, schema terms): term-indexed, dense.
    let mut xfer: Vec<u32> = vec![NO_DENSE_ID; g.dict().len()];
    let transfer = |id: TermId, g: &Graph, h: &mut Graph, xfer: &mut Vec<u32>| -> TermId {
        let slot = xfer[id.index()];
        if slot != NO_DENSE_ID {
            return TermId(slot);
        }
        let hid = h.dict_mut().encode_shared(Arc::clone(g.dict().shared(id)));
        xfer[id.index()] = hid.0;
        hid
    };

    // rd: G data node → H node, via the partition's dense class array.
    let map = |id: TermId| -> TermId {
        let c = partition
            .class_of(id)
            .expect("partition must cover every data node");
        class_node[c]
    };

    // SCH: schema copied verbatim.
    for t in g.schema() {
        let s = transfer(t.s, g, &mut h, &mut xfer);
        let p = transfer(t.p, g, &mut h, &mut xfer);
        let o = transfer(t.o, g, &mut h, &mut xfer);
        h.insert_encoded(Triple::new(s, p, o));
    }
    // Every H id stays below this bound — minted class-node ids are the
    // first `class_node.len()` H ids, transferred G constants (at most one
    // H id per G term) and the well-known properties account for the rest —
    // so when it fits 21 bits, a whole H triple packs into one u64 and the
    // massive duplication of quotiented triples is eliminated by a
    // (chunked, parallel above the measured threshold) sort instead of
    // 25k+ hash probes.
    let id_bound = class_node.len() + g.dict().len() + 8;
    const PACK_BITS: u32 = 21;
    const MASK: u64 = (1 << PACK_BITS) - 1;
    let packable = !force_unpacked && id_bound < (1usize << PACK_BITS);
    // DAT: quotient of data triples.
    match data_plan {
        DataPlan::Edges(edges) => {
            // One known edge per class pair and property: translate, sort
            // by H ids (matching the packed path's ascending emission
            // order exactly), insert. No per-triple work at all.
            let mut out: Vec<(u32, u32, u32)> = edges
                .iter()
                .map(|&(s, p, o)| {
                    let hp = transfer(p, g, &mut h, &mut xfer);
                    (class_node[s as usize].0, hp.0, class_node[o as usize].0)
                })
                .collect();
            out.sort_unstable();
            out.dedup();
            for (s, p, o) in out {
                h.insert_encoded(Triple::new(TermId(s), TermId(p), TermId(o)));
            }
        }
        DataPlan::Scan if packable => {
            let workers = emit_workers(g.data().len());
            if workers > 1 {
                // Shard-range emission. The dictionary can't be mutated
                // from the chunks, so constants transfer in a sequential
                // scan-order pre-pass first — assigning exactly the H ids
                // the fused loop would — and the chunks then read `xfer`
                // and the class tables only: translate + pack into a
                // disjoint buffer each, local sort-dedup, pairwise merge.
                for t in g.data() {
                    transfer(t.p, g, &mut h, &mut xfer);
                }
                let chunk_size = g.data().len().div_ceil(workers).max(1);
                let runs: Vec<Vec<u64>> = std::thread::scope(|scope| {
                    let (map, xfer) = (&map, &xfer);
                    let handles: Vec<_> = g
                        .data()
                        .chunks(chunk_size)
                        .map(|chunk| {
                            scope.spawn(move || {
                                let mut run: Vec<u64> = chunk
                                    .iter()
                                    .map(|t| {
                                        let s = map(t.s).0 as u64;
                                        let p = xfer[t.p.index()] as u64;
                                        let o = map(t.o).0 as u64;
                                        (s << (2 * PACK_BITS)) | (p << PACK_BITS) | o
                                    })
                                    .collect();
                                run.sort_unstable();
                                run.dedup();
                                run
                            })
                        })
                        .collect();
                    handles.into_iter().map(|jh| jh.join().unwrap()).collect()
                });
                for k in crate::parallel::merge_dedup_runs(runs) {
                    h.insert_encoded(Triple::new(
                        TermId((k >> (2 * PACK_BITS)) as u32),
                        TermId(((k >> PACK_BITS) & MASK) as u32),
                        TermId((k & MASK) as u32),
                    ));
                }
            } else {
                let mut keys: Vec<u64> = Vec::with_capacity(g.data().len());
                for t in g.data() {
                    let s = map(t.s).0 as u64;
                    let p = transfer(t.p, g, &mut h, &mut xfer).0 as u64;
                    let o = map(t.o).0 as u64;
                    keys.push((s << (2 * PACK_BITS)) | (p << PACK_BITS) | o);
                }
                crate::parallel::sort_dedup_packed(&mut keys);
                for k in keys {
                    h.insert_encoded(Triple::new(
                        TermId((k >> (2 * PACK_BITS)) as u32),
                        TermId(((k >> PACK_BITS) & MASK) as u32),
                        TermId((k & MASK) as u32),
                    ));
                }
            }
        }
        DataPlan::Scan => {
            for t in g.data() {
                let s = map(t.s);
                let p = transfer(t.p, g, &mut h, &mut xfer);
                let o = map(t.o);
                h.insert_encoded(Triple::new(s, p, o));
            }
        }
    }
    // TYP: quotient of type triples; classes keep their URIs.
    let tau = h.rdf_type();
    if packable {
        let workers = emit_workers(g.types().len());
        if workers > 1 {
            // Same shard-range shape as the data emission: class URIs
            // transfer in a sequential scan-order pre-pass, chunks pack
            // read-only.
            for t in g.types() {
                transfer(t.o, g, &mut h, &mut xfer);
            }
            let chunk_size = g.types().len().div_ceil(workers).max(1);
            let runs: Vec<Vec<u64>> = std::thread::scope(|scope| {
                let (map, xfer) = (&map, &xfer);
                let handles: Vec<_> = g
                    .types()
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move || {
                            let mut run: Vec<u64> = chunk
                                .iter()
                                .map(|t| {
                                    let s = map(t.s).0 as u64;
                                    let c = xfer[t.o.index()] as u64;
                                    (s << PACK_BITS) | c
                                })
                                .collect();
                            run.sort_unstable();
                            run.dedup();
                            run
                        })
                    })
                    .collect();
                handles.into_iter().map(|jh| jh.join().unwrap()).collect()
            });
            for k in crate::parallel::merge_dedup_runs(runs) {
                h.insert_encoded(Triple::new(
                    TermId((k >> PACK_BITS) as u32),
                    tau,
                    TermId((k & MASK) as u32),
                ));
            }
        } else {
            let mut keys: Vec<u64> = Vec::with_capacity(g.types().len());
            for t in g.types() {
                let s = map(t.s).0 as u64;
                let c = transfer(t.o, g, &mut h, &mut xfer).0 as u64;
                keys.push((s << PACK_BITS) | c);
            }
            crate::parallel::sort_dedup_packed(&mut keys);
            for k in keys {
                h.insert_encoded(Triple::new(
                    TermId((k >> PACK_BITS) as u32),
                    tau,
                    TermId((k & MASK) as u32),
                ));
            }
        }
    } else {
        for t in g.types() {
            let s = map(t.s);
            let c = transfer(t.o, g, &mut h, &mut xfer);
            h.insert_encoded(Triple::new(s, tau, c));
        }
    }

    Summary::from_quotient(
        kind,
        h,
        partition,
        &class_node,
        g.dict().len(),
        emit_threads,
    )
}

/// Checks the defining property of a quotient (Definition 4): `H` has an
/// edge `nS1 --a--> nS2` iff `G` has an edge `n1 --a--> n2` with
/// `ni ∈ Si`. The "if" direction is guaranteed by construction; this
/// verifies "only if" — every summary edge has at least one witness pair —
/// plus full coverage of `G`'s data/type triples. Used by tests and
/// property checks.
///
/// Node lookups go through the summary's dense `rd` array, and the
/// G-constant → H-id resolution is memoized in a term-indexed table, so
/// the witness sweep costs one `decode`/`lookup` per *distinct* property
/// or class rather than one per triple.
pub fn verify_quotient(g: &Graph, summary: &Summary) -> bool {
    let h = &summary.graph;
    // Memoized G term → H id for identity-preserving constants.
    let mut h_of: Vec<u32> = vec![NO_DENSE_ID; g.dict().len()];
    let mut resolve = |id: TermId| -> Option<TermId> {
        let slot = h_of[id.index()];
        if slot != NO_DENSE_ID {
            return Some(TermId(slot));
        }
        let hid = h.dict().lookup(g.dict().decode(id))?;
        h_of[id.index()] = hid.0;
        Some(hid)
    };
    // Every G data/type triple is represented in H.
    let tau = h.rdf_type();
    for t in g.data() {
        let (Some(s), Some(o)) = (summary.representative(t.s), summary.representative(t.o)) else {
            return false;
        };
        let Some(p) = resolve(t.p) else {
            return false;
        };
        if !h.contains(Triple::new(s, p, o)) {
            return false;
        }
    }
    for t in g.types() {
        let Some(s) = summary.representative(t.s) else {
            return false;
        };
        let Some(c) = resolve(t.o) else {
            return false;
        };
        if !h.contains(Triple::new(s, tau, c)) {
            return false;
        }
    }
    // Every H data edge has a witness in G.
    let mut g_edges: rdf_model::FxHashSet<(TermId, TermId, TermId)> = Default::default();
    for t in g.data() {
        let s = summary.representative(t.s).unwrap();
        let o = summary.representative(t.o).unwrap();
        let p = resolve(t.p).unwrap();
        g_edges.insert((s, p, o));
    }
    let data_ok = h.data().iter().all(|t| g_edges.contains(&(t.s, t.p, t.o)));
    let mut g_types: rdf_model::FxHashSet<(TermId, TermId)> = Default::default();
    for t in g.types() {
        let s = summary.representative(t.s).unwrap();
        let c = resolve(t.o).unwrap();
        g_types.insert((s, c));
    }
    let type_ok = h.types().iter().all(|t| g_types.contains(&(t.s, t.o)));
    // Schema copied verbatim (as terms).
    let schema_ok = g.schema().len() == h.schema().len()
        && g.schema().iter().all(|t| {
            let (Some(s), Some(p), Some(o)) = (
                h.dict().lookup(g.dict().decode(t.s)),
                h.dict().lookup(g.dict().decode(t.p)),
                h.dict().lookup(g.dict().decode(t.o)),
            ) else {
                return false;
            };
            h.contains(Triple::new(s, p, o))
        });
    data_ok && type_ok && schema_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::{data_nodes_ordered, Partition};
    use crate::fixtures::sample_graph;

    /// The identity partition gives a summary isomorphic to G itself.
    #[test]
    fn identity_partition_roundtrip() {
        let g = sample_graph();
        let nodes = data_nodes_ordered(&g);
        let p = Partition::group_by(&nodes, |n| n);
        let s = quotient_summary(&g, SummaryKind::Weak, &p, |i, _| {
            Term::iri(format!("urn:q:{i}"))
        });
        assert_eq!(s.graph.data().len(), g.data().len());
        assert_eq!(s.graph.types().len(), g.types().len());
        assert!(verify_quotient(&g, &s));
        assert!(s.check_correspondence_invariants());
    }

    /// Collapsing everything to one node keeps one edge per (p, τ-class).
    #[test]
    fn total_collapse() {
        let g = sample_graph();
        let nodes = data_nodes_ordered(&g);
        let p = Partition::group_by(&nodes, |_| 0u8);
        let s = quotient_summary(&g, SummaryKind::Weak, &p, |_, _| Term::iri("urn:q:all"));
        // One node; self-loops for the 6 distinct properties.
        assert_eq!(s.graph.data().len(), 6);
        // 3 distinct classes → 3 τ edges.
        assert_eq!(s.graph.types().len(), 3);
        assert!(verify_quotient(&g, &s));
    }

    #[test]
    fn schema_is_copied() {
        let g = crate::fixtures::figure5_graph();
        let nodes = data_nodes_ordered(&g);
        let p = Partition::group_by(&nodes, |n| n);
        let s = quotient_summary(&g, SummaryKind::Weak, &p, |i, _| {
            Term::iri(format!("urn:q:{i}"))
        });
        assert_eq!(s.graph.schema().len(), 2);
        assert!(verify_quotient(&g, &s));
    }

    #[test]
    fn verify_quotient_detects_missing_edges() {
        let g = sample_graph();
        let nodes = data_nodes_ordered(&g);
        let p = Partition::group_by(&nodes, |n| n);
        let mut s = quotient_summary(&g, SummaryKind::Weak, &p, |i, _| {
            Term::iri(format!("urn:q:{i}"))
        });
        // Sabotage: add an unjustified edge to H.
        let a = s.graph.dict_mut().encode(Term::iri("urn:q:0"));
        let b = s.graph.dict_mut().encode(Term::iri("urn:fake:prop"));
        s.graph.insert_encoded(Triple::new(a, b, a));
        assert!(!verify_quotient(&g, &s));
    }

    /// The forced non-packable path (graph-set hash dedup) emits exactly
    /// the triples of the packed sort-dedup path, for every summary kind
    /// the dense pipeline builds.
    #[test]
    fn forced_unpacked_matches_packed_on_all_kinds() {
        let g = sample_graph();
        let ctx = crate::context::SummaryContext::new(&g);
        for kind in [
            SummaryKind::Weak,
            SummaryKind::Strong,
            SummaryKind::TypedWeak,
            SummaryKind::TypedStrong,
            SummaryKind::TypeBased,
        ] {
            let packed = ctx.summarize(kind);
            let unpacked = ctx.summarize_forced_unpacked(kind);
            let canon = |s: &Summary| {
                let mut v: Vec<String> = rdf_io::write_graph(&s.graph)
                    .lines()
                    .map(String::from)
                    .collect();
                v.sort();
                v
            };
            assert_eq!(canon(&packed), canon(&unpacked), "{kind}");
        }
    }

    /// A dictionary pushed past the 21-bit pack bound must route through
    /// the hash-fallback path organically and still produce the same
    /// triples as the packed path does for the same logical graph.
    #[test]
    fn id_bound_overflow_takes_hash_fallback() {
        // Two copies of the same logical graph; one padded with >2^21
        // dictionary entries so id_bound >= 2^21.
        let build = |pad: usize| {
            let mut g = rdf_model::Graph::new();
            for i in 0..pad {
                g.dict_mut().encode(Term::iri(format!("urn:pad:{i}")));
            }
            for i in 0..40u32 {
                g.add_iri_triple(
                    &format!("urn:n:{}", i % 8),
                    &format!("urn:p:{}", i % 3),
                    &format!("urn:n:{}", (i + 1) % 8),
                );
                // Duplicated quotient triples so the dedup paths do work.
                g.add_iri_triple(
                    &format!("urn:n:{}", (i + 4) % 8),
                    &format!("urn:p:{}", i % 3),
                    &format!("urn:n:{}", (i + 5) % 8),
                );
            }
            g.add_iri_triple("urn:n:0", rdf_model::vocab::RDF_TYPE, "urn:C:a");
            g.add_iri_triple("urn:n:1", rdf_model::vocab::RDF_TYPE, "urn:C:a");
            g
        };
        let small = build(0);
        let big = build(1 << 21);
        assert!(
            big.dict().len() >= (1 << 21),
            "padding must overflow the pack bound"
        );
        let summarize = |g: &rdf_model::Graph| {
            let nodes = data_nodes_ordered(g);
            let p = Partition::group_by(&nodes, |n| n.0 % 4);
            quotient_summary(g, SummaryKind::Weak, &p, |i, _| {
                Term::iri(format!("urn:q:{i}"))
            })
        };
        let packed = summarize(&small);
        let fallback = summarize(&big);
        assert!(verify_quotient(&big, &fallback));
        // Triple-for-triple equality of the rendered graphs.
        let canon = |s: &Summary| {
            let mut v: Vec<String> = rdf_io::write_graph(&s.graph)
                .lines()
                .map(String::from)
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&packed), canon(&fallback));
    }
}
