//! Generic quotient-graph construction — Definitions 4 and 9 of the paper.
//!
//! Given a graph `G` and a partition of its data nodes, the summary is the
//! RDF graph with:
//!
//! * **SCH** — the same schema triples as `G` (copied verbatim);
//! * **TYP+DAT** — one node per partition class, an edge
//!   `n_{S1} --p--> n_{S2}` iff some `n1 ∈ S1`, `n2 ∈ S2` with
//!   `n1 --p--> n2 ∈ G`, and a τ edge `n_S --τ--> c` iff some member of `S`
//!   has type `c`. Class nodes and property URIs keep their identity.
//!
//! The summary graph gets its own dictionary; the `class_uri` callback
//! provides the URI of each partition class (the paper's representation
//! functions `N` / `C`).

use crate::equivalence::Partition;
use crate::summary::{Summary, SummaryKind};
use rdf_model::{Graph, Term, TermId, Triple, NO_DENSE_ID};

/// Builds the quotient summary of `g` under `partition`.
///
/// `partition` must cover every data node of `g` (subjects/objects of D_G
/// and subjects of T_G); `class_uri(i, members)` must return a distinct URI
/// per class `i`.
///
/// The hot translation loops do `Vec`-indexed reads only: the node → class
/// map is the partition's dense array, and the cross-dictionary constant
/// cache is a flat table keyed by the G dictionary id.
///
/// # Panics
/// Panics when the partition misses a data node.
pub fn quotient_summary(
    g: &Graph,
    kind: SummaryKind,
    partition: &Partition,
    mut class_uri: impl FnMut(usize, &[TermId]) -> String,
) -> Summary {
    let mut h = Graph::new();

    // H node per partition class.
    let mut class_node: Vec<TermId> = Vec::with_capacity(partition.classes.len());
    for (i, members) in partition.classes.iter().enumerate() {
        let uri = class_uri(i, members);
        class_node.push(h.dict_mut().encode(Term::iri(uri)));
    }

    // Cross-dictionary cache for constants that keep their identity
    // (properties, class URIs, schema terms): term-indexed, dense.
    let mut xfer: Vec<u32> = vec![NO_DENSE_ID; g.dict().len()];
    let transfer = |id: TermId, g: &Graph, h: &mut Graph, xfer: &mut Vec<u32>| -> TermId {
        let slot = xfer[id.index()];
        if slot != NO_DENSE_ID {
            return TermId(slot);
        }
        let hid = h.dict_mut().encode(g.dict().decode(id).clone());
        xfer[id.index()] = hid.0;
        hid
    };

    // rd: G data node → H node, via the partition's dense class array.
    let map = |id: TermId| -> TermId {
        let c = partition
            .class_of(id)
            .expect("partition must cover every data node");
        class_node[c]
    };

    // SCH: schema copied verbatim.
    for t in g.schema() {
        let s = transfer(t.s, g, &mut h, &mut xfer);
        let p = transfer(t.p, g, &mut h, &mut xfer);
        let o = transfer(t.o, g, &mut h, &mut xfer);
        h.insert_encoded(Triple::new(s, p, o));
    }
    // Every H id stays below this bound (classes + transferred G terms +
    // the well-known properties); when it fits 21 bits, a whole H triple
    // packs into one u64 and the massive duplication of quotiented triples
    // is eliminated by a sort instead of 25k+ hash probes.
    let id_bound = class_node.len() + g.dict().len() + 8;
    const PACK_BITS: u32 = 21;
    const MASK: u64 = (1 << PACK_BITS) - 1;
    let packable = id_bound < (1usize << PACK_BITS);
    // DAT: quotient of data triples.
    if packable {
        let mut keys: Vec<u64> = Vec::with_capacity(g.data().len());
        for t in g.data() {
            let s = map(t.s).0 as u64;
            let p = transfer(t.p, g, &mut h, &mut xfer).0 as u64;
            let o = map(t.o).0 as u64;
            keys.push((s << (2 * PACK_BITS)) | (p << PACK_BITS) | o);
        }
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            h.insert_encoded(Triple::new(
                TermId((k >> (2 * PACK_BITS)) as u32),
                TermId(((k >> PACK_BITS) & MASK) as u32),
                TermId((k & MASK) as u32),
            ));
        }
    } else {
        for t in g.data() {
            let s = map(t.s);
            let p = transfer(t.p, g, &mut h, &mut xfer);
            let o = map(t.o);
            h.insert_encoded(Triple::new(s, p, o));
        }
    }
    // TYP: quotient of type triples; classes keep their URIs.
    let tau = h.rdf_type();
    if packable {
        let mut keys: Vec<u64> = Vec::with_capacity(g.types().len());
        for t in g.types() {
            let s = map(t.s).0 as u64;
            let c = transfer(t.o, g, &mut h, &mut xfer).0 as u64;
            keys.push((s << PACK_BITS) | c);
        }
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            h.insert_encoded(Triple::new(
                TermId((k >> PACK_BITS) as u32),
                tau,
                TermId((k & MASK) as u32),
            ));
        }
    } else {
        for t in g.types() {
            let s = map(t.s);
            let c = transfer(t.o, g, &mut h, &mut xfer);
            h.insert_encoded(Triple::new(s, tau, c));
        }
    }

    Summary::from_quotient(kind, h, partition, &class_node, g.dict().len())
}

/// Checks the defining property of a quotient (Definition 4): `H` has an
/// edge `nS1 --a--> nS2` iff `G` has an edge `n1 --a--> n2` with
/// `ni ∈ Si`. The "if" direction is guaranteed by construction; this
/// verifies "only if" — every summary edge has at least one witness pair —
/// plus full coverage of `G`'s data/type triples. Used by tests and
/// property checks.
pub fn verify_quotient(g: &Graph, summary: &Summary) -> bool {
    // Every G data/type triple is represented in H.
    let h = &summary.graph;
    let witness_ok = g.data().iter().all(|t| {
        let (Some(s), Some(o)) = (summary.representative(t.s), summary.representative(t.o)) else {
            return false;
        };
        let Some(p) = h.dict().lookup(g.dict().decode(t.p)) else {
            return false;
        };
        h.contains(Triple::new(s, p, o))
    }) && g.types().iter().all(|t| {
        let Some(s) = summary.representative(t.s) else {
            return false;
        };
        let Some(c) = h.dict().lookup(g.dict().decode(t.o)) else {
            return false;
        };
        h.contains(Triple::new(s, h.rdf_type(), c))
    });
    if !witness_ok {
        return false;
    }
    // Every H data edge has a witness in G.
    let mut g_edges: rdf_model::FxHashSet<(TermId, TermId, TermId)> = Default::default();
    for t in g.data() {
        let s = summary.representative(t.s).unwrap();
        let o = summary.representative(t.o).unwrap();
        let p = h.dict().lookup(g.dict().decode(t.p)).unwrap();
        g_edges.insert((s, p, o));
    }
    let data_ok = h.data().iter().all(|t| g_edges.contains(&(t.s, t.p, t.o)));
    let mut g_types: rdf_model::FxHashSet<(TermId, TermId)> = Default::default();
    for t in g.types() {
        let s = summary.representative(t.s).unwrap();
        let c = h.dict().lookup(g.dict().decode(t.o)).unwrap();
        g_types.insert((s, c));
    }
    let type_ok = h.types().iter().all(|t| g_types.contains(&(t.s, t.o)));
    // Schema copied verbatim (as terms).
    let schema_ok = g.schema().len() == h.schema().len()
        && g.schema().iter().all(|t| {
            let (Some(s), Some(p), Some(o)) = (
                h.dict().lookup(g.dict().decode(t.s)),
                h.dict().lookup(g.dict().decode(t.p)),
                h.dict().lookup(g.dict().decode(t.o)),
            ) else {
                return false;
            };
            h.contains(Triple::new(s, p, o))
        });
    data_ok && type_ok && schema_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::{data_nodes_ordered, Partition};
    use crate::fixtures::sample_graph;

    /// The identity partition gives a summary isomorphic to G itself.
    #[test]
    fn identity_partition_roundtrip() {
        let g = sample_graph();
        let nodes = data_nodes_ordered(&g);
        let p = Partition::group_by(&nodes, |n| n);
        let s = quotient_summary(&g, SummaryKind::Weak, &p, |i, _| format!("urn:q:{i}"));
        assert_eq!(s.graph.data().len(), g.data().len());
        assert_eq!(s.graph.types().len(), g.types().len());
        assert!(verify_quotient(&g, &s));
        assert!(s.check_correspondence_invariants());
    }

    /// Collapsing everything to one node keeps one edge per (p, τ-class).
    #[test]
    fn total_collapse() {
        let g = sample_graph();
        let nodes = data_nodes_ordered(&g);
        let p = Partition::group_by(&nodes, |_| 0u8);
        let s = quotient_summary(&g, SummaryKind::Weak, &p, |_, _| "urn:q:all".into());
        // One node; self-loops for the 6 distinct properties.
        assert_eq!(s.graph.data().len(), 6);
        // 3 distinct classes → 3 τ edges.
        assert_eq!(s.graph.types().len(), 3);
        assert!(verify_quotient(&g, &s));
    }

    #[test]
    fn schema_is_copied() {
        let g = crate::fixtures::figure5_graph();
        let nodes = data_nodes_ordered(&g);
        let p = Partition::group_by(&nodes, |n| n);
        let s = quotient_summary(&g, SummaryKind::Weak, &p, |i, _| format!("urn:q:{i}"));
        assert_eq!(s.graph.schema().len(), 2);
        assert!(verify_quotient(&g, &s));
    }

    #[test]
    fn verify_quotient_detects_missing_edges() {
        let g = sample_graph();
        let nodes = data_nodes_ordered(&g);
        let p = Partition::group_by(&nodes, |n| n);
        let mut s = quotient_summary(&g, SummaryKind::Weak, &p, |i, _| format!("urn:q:{i}"));
        // Sabotage: add an unjustified edge to H.
        let a = s.graph.dict_mut().encode(Term::iri("urn:q:0"));
        let b = s.graph.dict_mut().encode(Term::iri("urn:fake:prop"));
        s.graph.insert_encoded(Triple::new(a, b, a));
        assert!(!verify_quotient(&g, &s));
    }
}
