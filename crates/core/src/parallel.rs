//! Parallel clique computation and weak summarization.
//!
//! The paper's future work: "improving scalability by leveraging a
//! massively parallel platform such as Spark". Property-clique computation
//! is embarrassingly parallel in the scan and cheap to combine: each worker
//! scans a chunk of D_G and produces (a) property-pair union obligations
//! from subjects/objects it saw entirely, and (b) its partial
//! `resource → representative property` maps; the combiner unions pairs
//! into one global union–find and reconciles cross-chunk resources. The
//! result is bit-identical to the sequential [`Cliques`].

use crate::cliques::{CliqueScope, Cliques};
use crate::equivalence::{data_nodes_ordered, weak_partition};
use crate::naming::n_uri;
use crate::quotient::quotient_summary;
use crate::summary::{Summary, SummaryKind};
use crate::unionfind::UnionFind;
use crate::weak::class_property_sets;
use rdf_model::{FxHashMap, FxHashSet, Graph, TermId};

/// Per-worker partial result of the clique scan.
struct Partial {
    /// First property seen per subject in this chunk.
    subj_repr: FxHashMap<TermId, TermId>,
    /// First property seen per object in this chunk.
    obj_repr: FxHashMap<TermId, TermId>,
    /// Property pairs that must share a source clique.
    src_unions: Vec<(TermId, TermId)>,
    /// Property pairs that must share a target clique.
    tgt_unions: Vec<(TermId, TermId)>,
}

fn scan_chunk(chunk: &[rdf_model::Triple], typed: &FxHashSet<TermId>) -> Partial {
    let mut p = Partial {
        subj_repr: FxHashMap::default(),
        obj_repr: FxHashMap::default(),
        src_unions: Vec::new(),
        tgt_unions: Vec::new(),
    };
    for t in chunk {
        if !typed.contains(&t.s) {
            match p.subj_repr.get(&t.s) {
                Some(&q) if q != t.p => p.src_unions.push((q, t.p)),
                Some(_) => {}
                None => {
                    p.subj_repr.insert(t.s, t.p);
                }
            }
        }
        if !typed.contains(&t.o) {
            match p.obj_repr.get(&t.o) {
                Some(&q) if q != t.p => p.tgt_unions.push((q, t.p)),
                Some(_) => {}
                None => {
                    p.obj_repr.insert(t.o, t.p);
                }
            }
        }
    }
    p
}

/// Computes [`Cliques`] using `threads` workers. Results are identical to
/// [`Cliques::compute`].
pub fn parallel_cliques(g: &Graph, scope: CliqueScope, threads: usize) -> Cliques {
    let threads = threads.max(1);
    let typed: FxHashSet<TermId> = match scope {
        CliqueScope::AllNodes => FxHashSet::default(),
        CliqueScope::UntypedOnly => g.typed_resources(),
    };
    let data = g.data();
    let chunk_size = data.len().div_ceil(threads).max(1);

    let partials: Vec<Partial> = std::thread::scope(|scope_| {
        let typed = &typed;
        let handles: Vec<_> = data
            .chunks(chunk_size)
            .map(|chunk| scope_.spawn(move || scan_chunk(chunk, typed)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // ---- Combine ----
    let mut prop_index: FxHashMap<TermId, usize> = FxHashMap::default();
    let mut props: Vec<TermId> = Vec::new();
    for t in data {
        prop_index.entry(t.p).or_insert_with(|| {
            props.push(t.p);
            props.len() - 1
        });
    }
    let n = props.len();
    let mut src_uf = UnionFind::new(n);
    let mut tgt_uf = UnionFind::new(n);
    let mut subj_repr: FxHashMap<TermId, usize> = FxHashMap::default();
    let mut obj_repr: FxHashMap<TermId, usize> = FxHashMap::default();
    for part in &partials {
        for &(a, b) in &part.src_unions {
            src_uf.union(prop_index[&a], prop_index[&b]);
        }
        for &(a, b) in &part.tgt_unions {
            tgt_uf.union(prop_index[&a], prop_index[&b]);
        }
        // Cross-chunk reconciliation: a resource seen in several chunks
        // forces its chunk representatives into one clique.
        for (&r, &p) in &part.subj_repr {
            let pi = prop_index[&p];
            match subj_repr.get(&r) {
                Some(&q) => {
                    src_uf.union(pi, q);
                }
                None => {
                    subj_repr.insert(r, pi);
                }
            }
        }
        for (&r, &p) in &part.obj_repr {
            let pi = prop_index[&p];
            match obj_repr.get(&r) {
                Some(&q) => {
                    tgt_uf.union(pi, q);
                }
                None => {
                    obj_repr.insert(r, pi);
                }
            }
        }
    }

    let (src_assign, n_src) = src_uf.dense_components();
    let (tgt_assign, n_tgt) = tgt_uf.dense_components();
    let mut source_cliques: Vec<Vec<TermId>> = vec![Vec::new(); n_src];
    let mut target_cliques: Vec<Vec<TermId>> = vec![Vec::new(); n_tgt];
    let mut source_clique_of_property = FxHashMap::default();
    let mut target_clique_of_property = FxHashMap::default();
    for (i, &p) in props.iter().enumerate() {
        source_cliques[src_assign[i]].push(p);
        target_cliques[tgt_assign[i]].push(p);
        source_clique_of_property.insert(p, src_assign[i]);
        target_clique_of_property.insert(p, tgt_assign[i]);
    }
    for c in source_cliques.iter_mut().chain(target_cliques.iter_mut()) {
        c.sort_unstable();
    }
    Cliques {
        source_cliques,
        target_cliques,
        source_clique_of_property,
        target_clique_of_property,
        subject_clique: subj_repr
            .into_iter()
            .map(|(r, pi)| (r, src_assign[pi]))
            .collect(),
        object_clique: obj_repr
            .into_iter()
            .map(|(r, pi)| (r, tgt_assign[pi]))
            .collect(),
    }
}

/// The weak summary built with a parallel clique scan. Produces the same
/// summary as [`crate::weak::weak_summary`].
pub fn parallel_weak_summary(g: &Graph, threads: usize) -> Summary {
    let cliques = parallel_cliques(g, CliqueScope::AllNodes, threads);
    let nodes = data_nodes_ordered(g);
    let partition = weak_partition(&cliques, &nodes);
    quotient_summary(g, SummaryKind::Weak, &partition, |_, members| {
        let (tc, sc) = class_property_sets(&cliques, members);
        n_uri(g.dict(), &tc, &sc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_graph;
    use rdf_io::write_graph;

    fn canonical(g: &Graph) -> Vec<String> {
        let mut v: Vec<String> = write_graph(g).lines().map(String::from).collect();
        v.sort();
        v
    }

    #[test]
    fn parallel_cliques_match_sequential() {
        let g = sample_graph();
        for threads in [1, 2, 3, 8] {
            let par = parallel_cliques(&g, CliqueScope::AllNodes, threads);
            let seq = Cliques::compute(&g, CliqueScope::AllNodes);
            // Same clique families (compare as sorted sets of sorted vecs).
            let norm = |cl: &Vec<Vec<TermId>>| {
                let mut v = cl.clone();
                v.sort();
                v
            };
            assert_eq!(norm(&par.source_cliques), norm(&seq.source_cliques));
            assert_eq!(norm(&par.target_cliques), norm(&seq.target_cliques));
            assert!(par.check_partition_invariant(&g));
        }
    }

    #[test]
    fn parallel_weak_equals_sequential_weak() {
        let g = sample_graph();
        for threads in [1, 2, 4] {
            let par = parallel_weak_summary(&g, threads);
            let seq = crate::weak::weak_summary(&g);
            assert_eq!(canonical(&par.graph), canonical(&seq.graph));
        }
    }

    #[test]
    fn untyped_scope_parallel() {
        let g = sample_graph();
        let par = parallel_cliques(&g, CliqueScope::UntypedOnly, 3);
        let seq = Cliques::compute(&g, CliqueScope::UntypedOnly);
        let norm = |cl: &Vec<Vec<TermId>>| {
            let mut v = cl.clone();
            v.sort();
            v
        };
        assert_eq!(norm(&par.source_cliques), norm(&seq.source_cliques));
        assert_eq!(norm(&par.target_cliques), norm(&seq.target_cliques));
    }

    #[test]
    fn more_threads_than_triples() {
        let mut g = Graph::new();
        g.add_iri_triple("a", "p", "b");
        let s = parallel_weak_summary(&g, 64);
        assert_eq!(s.graph.data().len(), 1);
    }
}
