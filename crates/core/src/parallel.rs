//! Parallel clique computation and weak summarization, on the dense
//! layout.
//!
//! The paper's future work: "improving scalability by leveraging a
//! massively parallel platform such as Spark". Property-clique computation
//! is embarrassingly parallel in the scan and cheap to combine. Each
//! worker scans a chunk of D_G into *fixed-size* dense structures — a
//! union–find over the (precomputed) dense property numbering and two
//! `Vec<u32>` representative tables indexed by the dictionary id — so the
//! combine step is a pair of linear array merges: union each worker's
//! union–find into the global one (`np` finds per worker), then reconcile
//! the per-resource representatives slot by slot. No hash maps are built
//! or merged anywhere. The result is identical to the sequential
//! [`Cliques::compute`], including clique numbering.
//!
//! Thread spawning and the per-worker tables have a fixed cost, so below
//! [`PARALLEL_CLIQUE_THRESHOLD`] data triples the scan is not worth
//! splitting: [`parallel_cliques`] then *automatically falls back* to the
//! sequential path ([`effective_threads`] returns 1). Benchmarks showed
//! the pre-dense parallel path losing to the sequential scan at BSBM-30k
//! precisely because it paid hash-map partials plus thread overhead on a
//! sub-millisecond job; the fallback makes the auto-selected path never
//! slower than sequential at small scales, while [`parallel_cliques_forced`]
//! remains available to measure the true parallel crossover.
//!
//! The same measured-threshold discipline covers the two remaining serial
//! substrate stages: the chunked CSR adjacency fill of
//! [`crate::context::SummaryContext`] (gated on
//! [`PARALLEL_CSR_THRESHOLD`] / [`substrate_threads`]) and the quotient's
//! packed-triple sort-dedup ([`sort_dedup_packed`], gated on
//! [`PARALLEL_SORT_THRESHOLD`]). Both fall back to the sequential code
//! below their thresholds and produce bit-identical results either way.

use crate::cliques::{CliqueScope, Cliques};
use crate::equivalence::{data_nodes_ordered, weak_partition};
use crate::naming::n_term;
use crate::quotient::quotient_summary;
use crate::summary::{Summary, SummaryKind};
use crate::unionfind::UnionFind;
use crate::weak::class_property_sets;
use rdf_model::{DenseIdMap, Graph, NO_DENSE_ID};

/// Below this many data triples, the parallel clique scan's fixed costs
/// (thread spawn + per-worker dense tables + merge) outweigh the split
/// scan, and [`parallel_cliques`] runs sequentially instead. Measured
/// with the dense layout on BSBM scales (see the `cliques_bsbm_*` benches
/// and `profile_crossover`): two workers start beating the sequential
/// scan at roughly this size and win consistently above it (e.g. ~375 µs
/// vs ~480 µs at BSBM-30k's 25 k data triples).
pub const PARALLEL_CLIQUE_THRESHOLD: usize = 8_192;

/// Sizes the worker cap above the threshold: the cap is
/// `max(2, n_data_triples / TRIPLES_PER_EXTRA_WORKER)`. The combine step
/// costs `O(workers × dictionary size)`, so worker counts must grow much
/// more slowly than the scan: at every measured scale up to ~170 k
/// triples, 2 workers beat 4 and 8.
const TRIPLES_PER_EXTRA_WORKER: usize = 65_536;

/// The worker count [`parallel_cliques`] actually uses for a graph with
/// `n_data_triples`: `1` (sequential fallback) below
/// [`PARALLEL_CLIQUE_THRESHOLD`]; otherwise the requested count, capped by
/// the measured scaling limit of
/// `max(2, n_data_triples / TRIPLES_PER_EXTRA_WORKER)` workers.
pub fn effective_threads(n_data_triples: usize, requested: usize) -> usize {
    if n_data_triples < PARALLEL_CLIQUE_THRESHOLD {
        1
    } else {
        let cap = 2.max(n_data_triples / TRIPLES_PER_EXTRA_WORKER);
        requested.max(1).min(cap)
    }
}

/// Below this many data triples, the shard-parallel substrate build of
/// [`crate::context::SummaryContext::sharded`] is not worth its fixed
/// costs — per-shard `DenseIdMap` slot tables (`O(dictionary)` each) plus
/// the absorb/remap merge pass — and the build runs the sequential
/// single-shard path instead. Chosen to match the CSR fill's break-even:
/// the sharded build subsumes the chunked fill, so below the fill's
/// threshold there is nothing left for shards to win.
pub const PARALLEL_SHARD_THRESHOLD: usize = 65_536;

/// The shard count [`crate::context::SummaryContext::sharded`] actually
/// uses for a graph with `n_data_triples` when `requested` shards are
/// asked for: `1` (the sequential single-shard special case) below
/// [`PARALLEL_SHARD_THRESHOLD`], otherwise the request clamped to the
/// 256-worker cap shared with the CSR fill. Unlike [`substrate_threads`]
/// this honors explicit requests beyond the machine's core count — the
/// CLI routes a user's `--threads N` through here, and the auto default
/// (available cores) keeps 1-CPU hosts on the sequential path.
pub fn shard_count(n_data_triples: usize, requested: usize) -> usize {
    if n_data_triples < PARALLEL_SHARD_THRESHOLD {
        1
    } else {
        requested.clamp(1, 256)
    }
}

/// Below this many CSR entries (one per data triple and direction), the
/// chunked parallel adjacency fill of
/// [`crate::context::SummaryContext::new`] loses to the single-threaded
/// cursor sweep: the parallel path pays the row-range bucketing pass and
/// `2 × workers` thread spawns, each worth thousands of plain cursor
/// writes. Measured with `profile_substrate` on BSBM scales (where the
/// 30k scale's ~25 k entries sit comfortably below break-even).
pub const PARALLEL_CSR_THRESHOLD: usize = 65_536;

/// Below this many packed quotient keys, `sort_unstable` + `dedup` on one
/// thread beats the chunked sort-merge (the merge pass plus a thread
/// spawn cost more than the saved sorting). Measured with the
/// `quotient_h_graph` bench on BSBM scales.
pub const PARALLEL_SORT_THRESHOLD: usize = 16_384;

/// Below this many input triples, the quotient's shard-range packed-key
/// *emission* (translate + pack per chunk, local sort-dedup, pairwise
/// merge) runs fused and sequential instead: the parallel path pays a
/// sequential dictionary-transfer pre-pass over the triples plus the
/// thread spawns, each worth tens of thousands of packed-key pushes.
/// Sharded contexts force their shard count through the emission
/// regardless of size (the shard count itself is already threshold-gated),
/// which is how the forced-shard suites cover the parallel path on
/// fixture-sized graphs.
pub const PARALLEL_EMIT_THRESHOLD: usize = 65_536;

/// Below this many type triples, the class-set accumulation of
/// [`crate::context::SummaryContext::class_sets`] runs sequentially: the
/// chunked scan pays one `O(dictionary)` slot table per worker plus the
/// chunk-order merge, each worth tens of thousands of plain slot writes,
/// while the scan itself is a single cache-friendly sweep over T_G.
/// BSBM's type density (~1 type triple per 10 data triples) keeps every
/// bundled scale below this; the threshold matches the CSR fill's
/// break-even, which has the same per-worker-table cost shape.
pub const PARALLEL_CLASS_THRESHOLD: usize = 65_536;

/// The worker count the substrate stages (CSR fill, packed sort, quotient
/// emission) use for `n` work items with the given threshold: `1` below
/// it; otherwise 2 workers plus one more per [`TRIPLES_PER_EXTRA_WORKER`]
/// items. Unlike the clique scan's [`effective_threads`], this also caps
/// at the worker-pool ceiling ([`available_workers`]: `RDFSUM_THREADS`
/// or the machine's available parallelism) — the substrate stages are
/// pure throughput splits with no algorithmic win from oversubscription,
/// so a single-core host always runs them sequentially.
pub fn substrate_threads(n: usize, threshold: usize) -> usize {
    if n < threshold {
        1
    } else {
        // The CSR fill's row → worker table is u8-indexed; 256 workers is
        // far past any measured scaling win anyway.
        (2 + n / TRIPLES_PER_EXTRA_WORKER)
            .min(available_workers())
            .clamp(1, 256)
    }
}

/// The worker-pool ceiling the auto-selected substrate stages respect:
/// `RDFSUM_THREADS` when set to a positive integer, otherwise the
/// machine's available parallelism. The override exists so the CI thread
/// matrix can pin the pool (to 1 and 4) and stop single-core hosts from
/// hiding multi-thread merge bugs — and so oversubscribed shared hosts
/// can be told the truth about their spare cores. Read once and cached:
/// the stages consult it on every build, and a mid-run flip would let two
/// halves of one build disagree about worker counts.
pub(crate) fn available_workers() -> usize {
    use std::sync::OnceLock;
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("RDFSUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, usize::from))
    })
}

/// Sorts and deduplicates the quotient's packed triple keys, splitting
/// into per-thread chunk sorts followed by pairwise merge-dedup rounds
/// when the key count clears [`PARALLEL_SORT_THRESHOLD`]. The result is
/// exactly `keys.sort_unstable(); keys.dedup()` either way.
pub fn sort_dedup_packed(keys: &mut Vec<u64>) {
    sort_dedup_packed_forced(keys, substrate_threads(keys.len(), PARALLEL_SORT_THRESHOLD));
}

/// [`sort_dedup_packed`] with an explicit worker count — for tests and
/// crossover measurements (the auto path only goes parallel when the key
/// count clears the threshold *and* the machine has spare cores).
pub fn sort_dedup_packed_forced(keys: &mut Vec<u64>, threads: usize) {
    if threads <= 1 || keys.len() < 2 {
        keys.sort_unstable();
        keys.dedup();
        return;
    }
    let chunk_size = keys.len().div_ceil(threads).max(1);
    let runs: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = keys
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut run = chunk.to_vec();
                    run.sort_unstable();
                    run.dedup();
                    run
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    *keys = merge_dedup_runs(runs);
}

/// Reduces sorted, deduplicated runs to one by pairwise merge-dedup
/// rounds, merging the pairs of each round on their own threads. Pairing
/// is positional — (0,1), (2,3), … with an odd tail carried — so the
/// result is order-independent anyway (merging is commutative on sets)
/// but the work tree matches the shard tree of
/// [`crate::context::SummaryContext::sharded`], keeping round counts and
/// profiles comparable. Dedup inside every merge keeps intermediate runs
/// minimal; the final run equals sorting and deduplicating the
/// concatenation of all inputs. Single-pair rounds skip the spawn.
pub fn merge_dedup_runs(mut runs: Vec<Vec<u64>>) -> Vec<u64> {
    while runs.len() > 2 {
        enum Slot<'s> {
            Merged(std::thread::ScopedJoinHandle<'s, Vec<u64>>),
            Carried(Vec<u64>),
        }
        runs = std::thread::scope(|scope| {
            let mut slots: Vec<Slot<'_>> = Vec::with_capacity(runs.len().div_ceil(2));
            let mut iter = runs.drain(..);
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => slots.push(Slot::Merged(scope.spawn(move || merge_dedup(&a, &b)))),
                    None => slots.push(Slot::Carried(a)),
                }
            }
            drop(iter);
            slots
                .into_iter()
                .map(|s| match s {
                    Slot::Merged(h) => h.join().unwrap(),
                    Slot::Carried(r) => r,
                })
                .collect()
        });
    }
    // Final pair: one merge, nothing to overlap with — skip the spawn.
    if runs.len() == 2 {
        let b = runs.pop().unwrap();
        let a = runs.pop().unwrap();
        return merge_dedup(&a, &b);
    }
    runs.pop().unwrap_or_default()
}

/// Merges two sorted, deduplicated runs into one, dropping duplicates.
fn merge_dedup(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Computes [`Cliques`] using up to `threads` workers, falling back to the
/// sequential scan below [`PARALLEL_CLIQUE_THRESHOLD`] data triples.
/// Results are identical to [`Cliques::compute`] either way.
pub fn parallel_cliques(g: &Graph, scope: CliqueScope, threads: usize) -> Cliques {
    match effective_threads(g.data().len(), threads) {
        0 | 1 => Cliques::compute(g, scope),
        t => parallel_cliques_forced(g, scope, t),
    }
}

/// The parallel clique scan without the size-threshold fallback — for
/// benchmarks and crossover measurements. Prefer [`parallel_cliques`].
pub fn parallel_cliques_forced(g: &Graph, scope: CliqueScope, threads: usize) -> Cliques {
    let threads = threads.max(1);
    let n_terms = g.dict().len();

    // Dense property numbering, one sequential pass (cheap relative to the
    // scan, and it fixes the clique ids to match the sequential path).
    let mut prop_map = DenseIdMap::with_capacity(n_terms);
    for t in g.data() {
        prop_map.intern(t.p);
    }
    let (prop_of_term, props) = prop_map.into_parts();
    let np = props.len();

    // Typed-resource flags for the untyped-only scope (term-indexed).
    let mut typed = vec![false; n_terms];
    if scope == CliqueScope::UntypedOnly {
        for t in g.types() {
            typed[t.s.index()] = true;
        }
    }

    /// Per-worker partial: fixed-size dense structures only.
    struct Partial {
        src_uf: UnionFind,
        tgt_uf: UnionFind,
        /// Term-indexed: first dense property seen per subject.
        subj_repr: Vec<u32>,
        /// Term-indexed: first dense property seen per object.
        obj_repr: Vec<u32>,
    }

    let data = g.data();
    let chunk_size = data.len().div_ceil(threads).max(1);
    let partials: Vec<Partial> = std::thread::scope(|scope_| {
        let prop_of_term = &prop_of_term;
        let typed = &typed;
        let handles: Vec<_> = data
            .chunks(chunk_size)
            .map(|chunk| {
                scope_.spawn(move || {
                    let mut part = Partial {
                        src_uf: UnionFind::new(np),
                        tgt_uf: UnionFind::new(np),
                        subj_repr: vec![NO_DENSE_ID; n_terms],
                        obj_repr: vec![NO_DENSE_ID; n_terms],
                    };
                    for t in chunk {
                        let pi = prop_of_term[t.p.index()];
                        if !typed[t.s.index()] {
                            let slot = &mut part.subj_repr[t.s.index()];
                            if *slot == NO_DENSE_ID {
                                *slot = pi;
                            } else {
                                part.src_uf.union(pi as usize, *slot as usize);
                            }
                        }
                        if !typed[t.o.index()] {
                            let slot = &mut part.obj_repr[t.o.index()];
                            if *slot == NO_DENSE_ID {
                                *slot = pi;
                            } else {
                                part.tgt_uf.union(pi as usize, *slot as usize);
                            }
                        }
                    }
                    part
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // ---- Combine: linear merges of fixed-size arrays ----
    let mut src_uf = UnionFind::new(np);
    let mut tgt_uf = UnionFind::new(np);
    let mut subj_repr = vec![NO_DENSE_ID; n_terms];
    let mut obj_repr = vec![NO_DENSE_ID; n_terms];
    for mut part in partials {
        // Union-find merge: every element unions with its chunk-local root.
        for i in 0..np {
            let r = part.src_uf.find(i);
            if r != i {
                src_uf.union(i, r);
            }
            let r = part.tgt_uf.find(i);
            if r != i {
                tgt_uf.union(i, r);
            }
        }
        // Cross-chunk reconciliation: a resource seen in several chunks
        // forces its chunk representatives into one clique.
        for idx in 0..n_terms {
            let pr = part.subj_repr[idx];
            if pr != NO_DENSE_ID {
                let slot = &mut subj_repr[idx];
                if *slot == NO_DENSE_ID {
                    *slot = pr;
                } else {
                    src_uf.union(pr as usize, *slot as usize);
                }
            }
            let pr = part.obj_repr[idx];
            if pr != NO_DENSE_ID {
                let slot = &mut obj_repr[idx];
                if *slot == NO_DENSE_ID {
                    *slot = pr;
                } else {
                    tgt_uf.union(pr as usize, *slot as usize);
                }
            }
        }
    }
    Cliques::from_parts(&props, src_uf, tgt_uf, subj_repr, obj_repr)
}

/// The weak summary built with the (auto-selected) parallel clique scan.
/// Produces the same summary as [`crate::weak::weak_summary`].
pub fn parallel_weak_summary(g: &Graph, threads: usize) -> Summary {
    let cliques = parallel_cliques(g, CliqueScope::AllNodes, threads);
    let nodes = data_nodes_ordered(g);
    let partition = weak_partition(&cliques, &nodes);
    quotient_summary(g, SummaryKind::Weak, &partition, |_, members| {
        let (tc, sc) = class_property_sets(&cliques, members);
        n_term(g.dict(), &tc, &sc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sample_graph;
    use rdf_io::write_graph;

    fn canonical(g: &Graph) -> Vec<String> {
        let mut v: Vec<String> = write_graph(g).lines().map(String::from).collect();
        v.sort();
        v
    }

    /// The auto-selection: below the measured threshold (where the split
    /// scan loses to the sequential one) the scan runs sequentially; above
    /// it the requested worker count is honored up to the measured scaling
    /// cap — at BSBM-30k that means two workers, the configuration that
    /// beats the sequential scan there.
    #[test]
    fn auto_fallback_chooses_sequential_below_threshold() {
        // Small graphs: always sequential, whatever was requested.
        assert_eq!(effective_threads(PARALLEL_CLIQUE_THRESHOLD - 1, 4), 1);
        assert_eq!(effective_threads(100, 8), 1);
        // BSBM-30k has ~25k data triples: two workers win there; asking
        // for 8 must not regress below the sequential scan.
        assert_eq!(effective_threads(25_227, 8), 2);
        assert_eq!(effective_threads(25_227, 2), 2);
        // The cap relaxes as the scan grows.
        assert_eq!(effective_threads(4 * TRIPLES_PER_EXTRA_WORKER, 8), 4);
        // Requests below the cap are honored as-is.
        assert_eq!(effective_threads(4 * TRIPLES_PER_EXTRA_WORKER, 3), 3);
        assert_eq!(effective_threads(PARALLEL_CLIQUE_THRESHOLD, 0), 1);
    }

    #[test]
    fn forced_parallel_cliques_match_sequential_exactly() {
        let g = sample_graph();
        for threads in [1, 2, 3, 8] {
            let par = parallel_cliques_forced(&g, CliqueScope::AllNodes, threads);
            let seq = Cliques::compute(&g, CliqueScope::AllNodes);
            // The dense merge preserves even the clique numbering.
            assert_eq!(par.source_cliques, seq.source_cliques);
            assert_eq!(par.target_cliques, seq.target_cliques);
            assert!(par.check_partition_invariant(&g));
        }
    }

    #[test]
    fn parallel_cliques_match_sequential() {
        let g = sample_graph();
        for threads in [1, 2, 3, 8] {
            let par = parallel_cliques(&g, CliqueScope::AllNodes, threads);
            let seq = Cliques::compute(&g, CliqueScope::AllNodes);
            assert_eq!(par.source_cliques, seq.source_cliques);
            assert_eq!(par.target_cliques, seq.target_cliques);
            assert!(par.check_partition_invariant(&g));
        }
    }

    #[test]
    fn parallel_weak_equals_sequential_weak() {
        let g = sample_graph();
        for threads in [1, 2, 4] {
            let par = parallel_weak_summary(&g, threads);
            let seq = crate::weak::weak_summary(&g);
            assert_eq!(canonical(&par.graph), canonical(&seq.graph));
        }
    }

    #[test]
    fn untyped_scope_parallel() {
        let g = sample_graph();
        let par = parallel_cliques_forced(&g, CliqueScope::UntypedOnly, 3);
        let seq = Cliques::compute(&g, CliqueScope::UntypedOnly);
        assert_eq!(par.source_cliques, seq.source_cliques);
        assert_eq!(par.target_cliques, seq.target_cliques);
    }

    /// The chunked sort-merge equals `sort_unstable` + `dedup` exactly,
    /// for every worker count and duplicate-heavy inputs.
    #[test]
    fn forced_parallel_sort_dedup_matches_sequential() {
        let mut rng = rdf_model::SplitMix64::new(0x50D);
        for case in 0..32 {
            let len = case * 11;
            let keys: Vec<u64> = (0..len).map(|_| rng.index(40) as u64).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            expect.dedup();
            for threads in [1, 2, 3, 7] {
                let mut got = keys.clone();
                sort_dedup_packed_forced(&mut got, threads);
                assert_eq!(got, expect, "case {case}, {threads} threads");
            }
        }
    }

    /// The substrate stages refuse to go parallel below their threshold or
    /// beyond the machine's spare cores, and scale workers slowly above.
    #[test]
    fn substrate_thread_selection() {
        assert_eq!(substrate_threads(0, PARALLEL_SORT_THRESHOLD), 1);
        assert_eq!(
            substrate_threads(PARALLEL_SORT_THRESHOLD - 1, PARALLEL_SORT_THRESHOLD),
            1
        );
        // The ceiling is env-aware (`RDFSUM_THREADS` — the CI thread
        // matrix pins it), so compare against the resolved pool, not raw
        // `available_parallelism`.
        let avail = available_workers();
        let t = substrate_threads(PARALLEL_SORT_THRESHOLD, PARALLEL_SORT_THRESHOLD);
        assert!(t >= 1 && t <= avail.max(1));
        let big = substrate_threads(10 * TRIPLES_PER_EXTRA_WORKER, PARALLEL_CSR_THRESHOLD);
        assert!(big <= avail.max(1));
    }

    /// `merge_dedup_runs` equals sorting + deduplicating the concatenation
    /// of its inputs, for empty runs, odd run counts, and deep rounds.
    #[test]
    fn merge_dedup_runs_matches_flat_sort() {
        let mut rng = rdf_model::SplitMix64::new(0xA11);
        for case in 0..24 {
            let n_runs = case % 9;
            let runs: Vec<Vec<u64>> = (0..n_runs)
                .map(|_| {
                    let mut r: Vec<u64> =
                        (0..rng.index(30)).map(|_| rng.index(50) as u64).collect();
                    r.sort_unstable();
                    r.dedup();
                    r
                })
                .collect();
            let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(merge_dedup_runs(runs), expect, "case {case}");
        }
    }

    /// The sharded-build policy: sequential below the threshold, the
    /// explicit request (clamped to the worker-table cap) above it.
    #[test]
    fn shard_count_policy() {
        assert_eq!(shard_count(PARALLEL_SHARD_THRESHOLD - 1, 8), 1);
        assert_eq!(shard_count(100, 999), 1);
        assert_eq!(shard_count(PARALLEL_SHARD_THRESHOLD, 8), 8);
        assert_eq!(shard_count(PARALLEL_SHARD_THRESHOLD, 0), 1);
        assert_eq!(shard_count(1 << 20, 999), 256);
    }

    #[test]
    fn more_threads_than_triples() {
        let mut g = Graph::new();
        g.add_iri_triple("a", "p", "b");
        let s = parallel_weak_summary(&g, 64);
        assert_eq!(s.graph.data().len(), 1);
        let cq = parallel_cliques_forced(&g, CliqueScope::AllNodes, 64);
        assert_eq!(cq.source_cliques.len(), 1);
    }
}
