//! Full-pipeline integration tests: generate → serialize → parse → store →
//! saturate → summarize → query, across crates.

use rdfsummary::prelude::*;
use rdfsummary::rdf_query::{sample_rbgp_queries, WorkloadConfig};
use rdfsummary::rdfsum_workloads as workloads;

#[test]
fn bsbm_roundtrip_and_summaries() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(60));
    // Serialize + reparse: identical triple count and identical summaries.
    let text = write_graph(&g);
    let g2 = parse_graph(&text).unwrap();
    assert_eq!(g.len(), g2.len());
    for kind in [SummaryKind::Weak, SummaryKind::Strong] {
        let a = summarize(&g, kind);
        let b = summarize(&g2, kind);
        assert!(
            rdfsummary::rdfsum_core::summary_isomorphic(&a.graph, &b.graph),
            "{kind} differs after round trip"
        );
    }
}

#[test]
fn lubm_saturate_then_query() {
    let g = workloads::generate_lubm(&LubmConfig::with_universities(1));
    let sat = saturate(&g);
    let store = TripleStore::new(sat);
    // Every professor worksFor ⇒ is an Employee (via Faculty) in G∞.
    let q = parse_query(
        &format!(
            "q(?x) :- ?x a <{0}Employee>, ?x <{0}worksFor> ?d",
            workloads::lubm::UNIV_NS
        ),
        &PrefixMap::with_defaults(),
    )
    .unwrap();
    let cq = compile(&q, store.graph()).unwrap();
    let rs = Evaluator::new(&store).select(&cq);
    assert!(rs.len() > 5, "expected many employees, got {}", rs.len());
}

#[test]
fn summaries_much_smaller_than_input() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(150));
    for s in summarize_all(&g) {
        let ratio = s.compression_ratio(g.len());
        assert!(ratio < 0.05, "{} summary too large: ratio {ratio}", s.kind);
        // Every data node of G is represented.
        assert_eq!(s.n_represented(), g.data_nodes().len());
    }
}

#[test]
fn store_scans_match_graph_contents() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(25));
    let store = TripleStore::new(g.clone());
    assert_eq!(store.len(), g.len());
    for t in g.iter().take(200) {
        assert!(store.contains(t));
        assert!(store.any(TriplePattern::new(Some(t.s), None, None)));
        assert!(store.any(TriplePattern::new(None, Some(t.p), Some(t.o))));
    }
}

#[test]
fn sampled_queries_answerable_end_to_end() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(40));
    let store = TripleStore::new(g.clone());
    let queries = sample_rbgp_queries(
        &store,
        &WorkloadConfig {
            queries: 25,
            patterns_per_query: 3,
            seed: 0xE2E,
            ..Default::default()
        },
    );
    assert_eq!(queries.len(), 25);
    let ev = Evaluator::new(&store);
    for q in &queries {
        let cq = compile(q, store.graph()).unwrap();
        assert!(ev.ask(&cq), "sampled query empty: {q}");
        // And its textual form parses back to the same query.
        let reparsed = parse_query(&q.to_string(), &PrefixMap::with_defaults()).unwrap();
        assert_eq!(&reparsed, q);
    }
}

#[test]
fn dot_export_all_summaries() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(10));
    for s in summarize_all(&g) {
        let dot = to_dot(&s.graph, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
    }
}

#[test]
fn file_io_roundtrip() {
    let dir = std::env::temp_dir().join("rdfsummary_test_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sample.nt");
    let g = rdfsummary::rdfsum_core::fixtures::sample_graph();
    save_path(&g, &path).unwrap();
    let g2 = load_path(&path).unwrap();
    assert_eq!(g.len(), g2.len());
    std::fs::remove_file(&path).ok();
}
