//! End-to-end golden tests pinning the paper's running example (§3–§5)
//! through the public façade: Figure 2 in, Table 1 and Figures 4/6/7/9 out.

use rdfsummary::prelude::*;
use rdfsummary::rdfsum_core::fixtures::{exid, sample_graph};
use rdfsummary::rdfsum_core::naming::display_label;
use rdfsummary::rdfsum_core::{CliqueScope, Cliques};

fn label(s: &Summary, g: &Graph, local: &str) -> String {
    let node = s.representative(exid(g, local)).unwrap();
    display_label(s.graph.dict().decode(node).as_iri().unwrap())
}

#[test]
fn table1_cliques() {
    let g = sample_graph();
    let cq = Cliques::compute(&g, CliqueScope::AllNodes);
    assert_eq!(cq.source_cliques.len(), 3);
    assert_eq!(cq.target_cliques.len(), 5);
    // SC(r1) = SC1 = {author, title, editor, comment} — 4 members.
    let sc1 = cq.sc(exid(&g, "r1")).unwrap();
    assert_eq!(cq.source_members(sc1).len(), 4);
    // TC(r4) = TC5 = {reviewed, published}.
    let tc5 = cq.tc(exid(&g, "r4")).unwrap();
    assert_eq!(cq.target_members(tc5).len(), 2);
}

#[test]
fn figure4_weak() {
    let g = sample_graph();
    let w = summarize(&g, SummaryKind::Weak);
    let st = w.stats();
    assert_eq!((st.all_nodes, st.data_edges, st.type_edges), (9, 6, 4));
    assert_eq!(
        label(&w, &g, "r3"),
        "N[in=published,reviewed][out=author,comment,editor,title]"
    );
    assert_eq!(label(&w, &g, "r6"), "Nτ");
}

#[test]
fn figure6_type_based() {
    let g = sample_graph();
    let t = summarize(&g, SummaryKind::TypeBased);
    // r5 and r6 share C({Spec}); all untyped nodes copied.
    assert_eq!(
        t.representative(exid(&g, "r5")),
        t.representative(exid(&g, "r6"))
    );
    assert_eq!(t.n_summary_nodes(), 14);
}

#[test]
fn figure7_typed_weak() {
    let g = sample_graph();
    let tw = summarize(&g, SummaryKind::TypedWeak);
    let st = tw.stats();
    assert_eq!(tw.n_summary_nodes(), 9);
    assert_eq!(st.data_edges, 12);
    assert_eq!(label(&tw, &g, "r1"), "C{Book}");
    assert_eq!(label(&tw, &g, "r3"), "N[out=comment,editor]");
    // a1/a2 merged in TW…
    assert_eq!(
        tw.representative(exid(&g, "a1")),
        tw.representative(exid(&g, "a2"))
    );
}

#[test]
fn figure9_strong() {
    let g = sample_graph();
    let s = summarize(&g, SummaryKind::Strong);
    assert_eq!(s.n_summary_nodes(), 9);
    assert_eq!(s.stats().data_edges, 9);
    // …but split in TS (see DESIGN.md §2, ambiguity #2).
    let ts = summarize(&g, SummaryKind::TypedStrong);
    assert_ne!(
        ts.representative(exid(&g, "a1")),
        ts.representative(exid(&g, "a2"))
    );
}

#[test]
fn section2_book_example_queries() {
    // §2.1: the author query must be empty on G but non-empty on G∞.
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    let q = parse_query(
        "q(?x3) :- ?x1 <http://example.org/hasAuthor> ?x2, \
                   ?x2 <http://example.org/hasName> ?x3, \
                   ?x1 <http://example.org/hasTitle> ?t",
        &PrefixMap::with_defaults(),
    )
    .unwrap();
    let plain = TripleStore::new(g.clone());
    let cq = compile(&q, plain.graph()).unwrap();
    assert!(
        !Evaluator::new(&plain).ask(&cq),
        "incomplete answer on explicit triples only"
    );
    let sat = TripleStore::new(saturate(&g));
    let cq = compile(&q, sat.graph()).unwrap();
    let rs = Evaluator::new(&sat).select(&cq);
    let decoded = rs.decode(&sat);
    assert_eq!(decoded.len(), 1);
    assert_eq!(decoded[0][0], &Term::literal("G. Simenon"));
}

#[test]
fn sample_summary_roundtrips_through_ntriples() {
    // A summary is an RDF graph: serialize it, re-parse it, re-summarize
    // it — the fixpoint property survives the round trip.
    let g = sample_graph();
    let w = summarize(&g, SummaryKind::Weak);
    let text = write_graph(&w.graph);
    let reparsed = parse_graph(&text).unwrap();
    assert_eq!(reparsed.len(), w.graph.len());
    let w2 = summarize(&reparsed, SummaryKind::Weak);
    assert!(rdfsummary::rdfsum_core::summary_isomorphic(
        &w.graph, &w2.graph
    ));
}
