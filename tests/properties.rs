//! Integration tests for the paper's formal properties on realistic
//! datasets (the unit/prop tests cover random graphs; these cover the
//! benchmark generators end to end).

use rdfsummary::prelude::*;
use rdfsummary::rdf_query::{sample_rbgp_queries, WorkloadConfig};
use rdfsummary::rdfsum_core::{check_representativeness, completeness_check, fixpoint_holds};
use rdfsummary::rdfsum_workloads as workloads;

#[test]
fn fixpoint_on_bsbm() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(40));
    for kind in SummaryKind::ALL {
        assert!(fixpoint_holds(&g, kind), "fixpoint failed for {kind}");
    }
}

#[test]
fn fixpoint_on_lubm() {
    let g = workloads::generate_lubm(&LubmConfig::with_universities(1));
    for kind in SummaryKind::ALL {
        assert!(fixpoint_holds(&g, kind), "fixpoint failed for {kind}");
    }
}

#[test]
fn weak_strong_completeness_on_lubm() {
    // LUBM has ≺sc, ≺sp, domains and ranges — the full saturation menu.
    let g = workloads::generate_lubm(&LubmConfig::with_universities(1));
    assert!(completeness_check(&g, SummaryKind::Weak).holds);
    assert!(completeness_check(&g, SummaryKind::Strong).holds);
}

#[test]
fn weak_strong_completeness_on_bsbm_full_schema() {
    let g = workloads::generate_bsbm(&BsbmConfig {
        products: 30,
        schema: workloads::SchemaRichness::Full,
        ..Default::default()
    });
    assert!(completeness_check(&g, SummaryKind::Weak).holds);
    assert!(completeness_check(&g, SummaryKind::Strong).holds);
}

#[test]
fn typed_summaries_incomplete_under_domain_rules() {
    // LUBM's domain/range rules type previously-untyped resources, so TW
    // completeness generally fails (Props. 7/10) — and when it does, the
    // difference must come from exactly that mechanism. We assert only the
    // checker runs and gives a verdict; specific counter-examples are
    // pinned in the core crate (Figure 8).
    let g = workloads::generate_lubm(&LubmConfig::with_universities(1));
    let tw = completeness_check(&g, SummaryKind::TypedWeak);
    let ts = completeness_check(&g, SummaryKind::TypedStrong);
    // Both sides are still valid summaries of *something*; sizes are sane.
    assert!(!tw.of_saturation.graph.is_empty());
    assert!(!ts.shortcut.graph.is_empty());
}

#[test]
fn representativeness_on_bsbm_multiple_seeds() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(50));
    let store = TripleStore::new(g.clone());
    for seed in [1u64, 2, 3] {
        let queries = sample_rbgp_queries(
            &store,
            &WorkloadConfig {
                queries: 30,
                patterns_per_query: 4,
                seed,
                ..Default::default()
            },
        );
        for kind in SummaryKind::ALL {
            let s = summarize(&g, kind);
            let rep = check_representativeness(&g, &s, &queries);
            assert!(rep.nonempty_on_g > 0);
            assert!(
                rep.all_held(),
                "{kind} violated representativeness (seed {seed}): {:?}",
                rep.violations
            );
        }
    }
}

#[test]
fn representativeness_through_saturation_on_lubm() {
    // Queries sampled from G∞ (not G) must still be answerable on H∞:
    // the summary of G must represent implicit triples too (semantic
    // completeness requirement of §2.2).
    let g = workloads::generate_lubm(&LubmConfig::with_universities(1));
    let sat_store = TripleStore::new(saturate(&g));
    let queries = sample_rbgp_queries(
        &sat_store,
        &WorkloadConfig {
            queries: 30,
            patterns_per_query: 2,
            seed: 0x5A7,
            ..Default::default()
        },
    );
    // Weak/strong summaries are complete, so H∞ covers the implicit data.
    for kind in [SummaryKind::Weak, SummaryKind::Strong] {
        let s = summarize(&g, kind);
        let rep = check_representativeness(&g, &s, &queries);
        assert!(
            rep.all_held(),
            "{kind} failed on saturated workload: {:?}",
            rep.violations
        );
    }
}

#[test]
fn pruning_soundness_on_mixed_workload() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(40));
    let store = TripleStore::new(g.clone());
    let live = sample_rbgp_queries(
        &store,
        &WorkloadConfig {
            queries: 15,
            patterns_per_query: 3,
            seed: 0xDEAD,
            ..Default::default()
        },
    );
    let s = summarize(&g, SummaryKind::Weak);
    for q in &live {
        // A non-empty query must never be pruned.
        assert!(
            !rdfsummary::rdfsum_core::can_prune(&s, q),
            "unsound pruning of {q}"
        );
    }
}
