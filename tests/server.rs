//! Integration suite for the warm-store summary server: an in-process
//! server driven over real TCP.
//!
//! The two contracts this suite pins:
//!
//! 1. **byte-identity** — `SUMMARIZE` responses (cache misses *and* hits)
//!    are byte-identical to the single-shot CLI's `summarize --kind K
//!    --out FILE` output for the same graph, on the book graph, BSBM and
//!    LUBM, for all five summary kinds;
//! 2. **single-flight** — under ≥8 concurrent clients, each distinct
//!    `(fingerprint, kind)` pair is built exactly once (the
//!    `SummaryService::builds` counter seam), with no deadlocks and
//!    every response well-formed.

use rdfsummary::prelude::*;
use rdfsummary::rdfsum_core::{SummaryKind, SummaryService};
use rdfsummary::rdfsum_server::{Client, ServerHandle};
use rdfsummary::rdfsum_workloads as workloads;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

/// All five summary kinds the server must answer (the four principal
/// ones plus the type-based summary).
const FIVE_KINDS: [(SummaryKind, &str); 5] = [
    (SummaryKind::Weak, "w"),
    (SummaryKind::Strong, "s"),
    (SummaryKind::TypedWeak, "tw"),
    (SummaryKind::TypedStrong, "ts"),
    (SummaryKind::TypeBased, "t"),
];

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdfsummary"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdfsummary_server_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The three fixture graphs of the byte-identity contract, written as
/// N-Triples files: the paper's §2.1 book example, BSBM and LUBM.
fn fixture_files(dir: &Path) -> Vec<(&'static str, PathBuf)> {
    let fixtures = [
        ("book", rdfsummary::rdfsum_core::fixtures::book_graph()),
        (
            "bsbm",
            workloads::generate_bsbm(&BsbmConfig::with_products(30)),
        ),
        (
            "lubm",
            workloads::generate_lubm(&LubmConfig::with_universities(1)),
        ),
    ];
    fixtures
        .into_iter()
        .map(|(name, g)| {
            let path = dir.join(format!("{name}.nt"));
            save_path(&g, &path).unwrap();
            (name, path)
        })
        .collect()
}

fn start(threads: usize, workers: usize) -> (ServerHandle, Arc<SummaryService>) {
    let service = Arc::new(SummaryService::new(threads));
    let handle =
        rdfsummary::rdfsum_server::spawn("127.0.0.1:0", Arc::clone(&service), workers).unwrap();
    (handle, service)
}

/// The headline contract: for every fixture × kind, the server's
/// `SUMMARIZE` body — on the cold miss and on the warm cache hit — is
/// byte-identical to what the single-shot CLI writes with `--out`.
#[test]
fn summarize_responses_match_cli_output_byte_for_byte() {
    let dir = workdir("bytes");
    let (handle, service) = start(1, 4);
    let mut client = Client::connect(handle.addr()).unwrap();
    for (name, path) in fixture_files(&dir) {
        let path_str = path.to_str().unwrap();
        let loaded = client.load(path_str).unwrap();
        assert!(loaded.is_ok(), "{}", loaded.status);
        let fp = loaded.field("fp").unwrap().to_string();
        for (kind, tok) in FIVE_KINDS {
            // Single-shot CLI, same graph, same kind.
            let out = dir.join(format!("{name}_{tok}.nt"));
            let cli = bin()
                .args(["summarize", path_str, "--kind", tok, "--threads", "1"])
                .args(["--out", out.to_str().unwrap()])
                .output()
                .unwrap();
            assert!(
                cli.status.success(),
                "{}",
                String::from_utf8_lossy(&cli.stderr)
            );
            let cli_bytes = std::fs::read(&out).unwrap();

            // Cold miss, then warm hit; both byte-identical to the CLI.
            let miss = client.summarize(kind, path_str).unwrap();
            assert!(miss.is_ok(), "{}", miss.status);
            assert_eq!(miss.field("cached"), Some("0"), "{name}/{tok}");
            assert_eq!(miss.field("fp"), Some(fp.as_str()));
            let hit = client.summarize(kind, path_str).unwrap();
            assert_eq!(hit.field("cached"), Some("1"), "{name}/{tok}");
            assert_eq!(
                miss.body.as_deref(),
                Some(cli_bytes.as_slice()),
                "{name}/{tok}: miss body differs from CLI output"
            );
            assert_eq!(
                hit.body.as_deref(),
                Some(cli_bytes.as_slice()),
                "{name}/{tok}: cached body differs from CLI output"
            );
        }
    }
    // 3 fixtures × 5 kinds, each built exactly once.
    assert_eq!(service.builds(), 15);
    handle.shutdown();
}

/// A multi-threaded service yields the same bytes as the sequential one
/// (the sharded substrate is bit-identical; the cache key is content).
#[test]
fn threaded_service_answers_are_identical() {
    let dir = workdir("threads");
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(40));
    let path = dir.join("bsbm40.nt");
    save_path(&g, &path).unwrap();
    let path_str = path.to_str().unwrap();

    let (h1, _s1) = start(1, 2);
    let (h4, _s4) = start(4, 2);
    let mut c1 = Client::connect(h1.addr()).unwrap();
    let mut c4 = Client::connect(h4.addr()).unwrap();
    c1.load(path_str).unwrap();
    c4.load(path_str).unwrap();
    for (kind, tok) in FIVE_KINDS {
        let a = c1.summarize(kind, path_str).unwrap();
        let b = c4.summarize(kind, path_str).unwrap();
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(a.field("fp"), b.field("fp"), "{tok}: fingerprints differ");
        assert_eq!(a.body, b.body, "{tok}: bodies differ across thread counts");
    }
    h1.shutdown();
    h4.shutdown();
}

/// Loading the same content under two paths shares one cache line, and
/// snapshots fingerprint identically to their N-Triples source.
#[test]
fn cache_is_keyed_by_content_not_by_name() {
    let dir = workdir("content");
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    let a = dir.join("a.nt");
    let b = dir.join("copy of a.nt"); // path with a space, loaded verbatim
    let snap = dir.join("a.snap");
    save_path(&g, &a).unwrap();
    save_path(&g, &b).unwrap();
    rdfsummary::rdf_store::snapshot::save(&g, &snap).unwrap();

    let (handle, service) = start(1, 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    let fp_a = client.load(a.to_str().unwrap()).unwrap();
    let fp_b = client.load(b.to_str().unwrap()).unwrap();
    let fp_s = client.load(snap.to_str().unwrap()).unwrap();
    assert_eq!(fp_a.field("fp"), fp_b.field("fp"));
    assert_eq!(
        fp_a.field("fp"),
        fp_s.field("fp"),
        "snapshot load must fingerprint like its N-Triples source"
    );
    let miss = client
        .summarize(SummaryKind::Weak, a.to_str().unwrap())
        .unwrap();
    assert_eq!(miss.field("cached"), Some("0"));
    for other in [b.to_str().unwrap(), snap.to_str().unwrap()] {
        let hit = client.summarize(SummaryKind::Weak, other).unwrap();
        assert_eq!(hit.field("cached"), Some("1"), "{other}");
        assert_eq!(hit.body, miss.body);
    }
    assert_eq!(service.builds(), 1);
    handle.shutdown();
}

/// STATS and EVICT round out the protocol: counters move as expected and
/// eviction invalidates exactly the evicted graph's cache lines.
#[test]
fn stats_and_evict_lifecycle() {
    let dir = workdir("lifecycle");
    let files = fixture_files(&dir);
    let (handle, _service) = start(1, 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    for (_, path) in &files {
        client.load(path.to_str().unwrap()).unwrap();
    }
    let book = files[0].1.to_str().unwrap();
    client.summarize(SummaryKind::Weak, book).unwrap();
    client.summarize(SummaryKind::Strong, book).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.field("graphs"), Some("3"));
    assert_eq!(stats.field("cached"), Some("2"));
    assert_eq!(stats.field("builds"), Some("2"));
    let listing = stats.body_str().unwrap();
    assert_eq!(listing.lines().count(), 3);
    assert!(listing.contains("book.nt"), "{listing}");

    // Evicting the book drops its two cache lines…
    let evicted = client.evict(Some(book)).unwrap();
    assert_eq!(evicted.status, "OK evicted graphs=1 entries=2");
    let stats = client.stats().unwrap();
    assert_eq!(stats.field("graphs"), Some("2"));
    assert_eq!(stats.field("cached"), Some("0"));
    // …and summarizing it again is an unknown-graph error until reloaded.
    let err = client.summarize(SummaryKind::Weak, book).unwrap();
    assert!(err.status.starts_with("ERR summarize:"), "{}", err.status);
    client.load(book).unwrap();
    let miss = client.summarize(SummaryKind::Weak, book).unwrap();
    assert_eq!(miss.field("cached"), Some("0"));

    // EVICT * clears the world.
    let all = client.evict(None).unwrap();
    assert!(all.is_ok(), "{}", all.status);
    let stats = client.stats().unwrap();
    assert_eq!(stats.field("graphs"), Some("0"));
    assert_eq!(stats.field("cached"), Some("0"));
    handle.shutdown();
}

/// The single-flight proof over real TCP: 10 concurrent clients race all
/// five kinds on two distinct graphs; every response is well-formed and
/// each of the 10 distinct (fingerprint, kind) pairs is built exactly
/// once — the rest are cache hits or condvar waiters sharing the build.
#[test]
fn stress_exactly_one_build_per_fingerprint_kind() {
    let dir = workdir("stress1");
    let g1 = workloads::generate_bsbm(&BsbmConfig::with_products(25));
    let g2 = workloads::generate_lubm(&LubmConfig::with_universities(1));
    let p1 = dir.join("g1.nt");
    let p2 = dir.join("g2.nt");
    save_path(&g1, &p1).unwrap();
    save_path(&g2, &p2).unwrap();

    let (handle, service) = start(1, 16);
    let addr = handle.addr();
    let clients = 10;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (p1, p2) = (p1.clone(), p2.clone());
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Every client loads both graphs (interleaved LOADs are
                // content-identical, so the cache stays valid) and then
                // hammers every kind on both, in a per-client order.
                for p in [&p1, &p2] {
                    let r = client.load(p.to_str().unwrap()).unwrap();
                    assert!(r.is_ok(), "{}", r.status);
                }
                for round in 0..3 {
                    for (i, (kind, _)) in FIVE_KINDS.iter().enumerate() {
                        let p = if (c + i + round) % 2 == 0 { &p1 } else { &p2 };
                        let r = client.summarize(*kind, p.to_str().unwrap()).unwrap();
                        assert!(r.is_ok(), "{}", r.status);
                        let bytes: usize = r.field("bytes").unwrap().parse().unwrap();
                        assert_eq!(r.body.as_ref().unwrap().len(), bytes);
                        assert!(!r.body.as_ref().unwrap().is_empty());
                    }
                    let stats = client.stats().unwrap();
                    assert!(stats.is_ok(), "{}", stats.status);
                }
            });
        }
    });
    assert_eq!(
        service.builds(),
        10,
        "2 fingerprints x 5 kinds must build exactly once each"
    );
    let st = service.stats();
    assert_eq!(st.hits + st.misses, (clients * 3 * 5) as u64);
    handle.shutdown();
}

/// Chaos phase: interleaved LOAD / SUMMARIZE / EVICT / STATS from 8
/// clients. Evictions force legitimate rebuilds, so the build count is
/// no longer pinned — the assertions are liveness (no deadlock: the test
/// finishes) and well-formedness (every response is OK or a clean
/// expected ERR; summary bodies always match their advertised length and
/// exact expected bytes).
#[test]
fn stress_interleaved_load_summarize_evict() {
    let dir = workdir("stress2");
    let g1 = workloads::generate_bsbm(&BsbmConfig::with_products(15));
    let g2 = rdfsummary::rdfsum_core::fixtures::book_graph();
    let p1 = dir.join("g1.nt");
    let p2 = dir.join("g2.nt");
    save_path(&g1, &p1).unwrap();
    save_path(&g2, &p2).unwrap();
    // Expected bodies, computed through the same single-shot path the
    // service mirrors (threads = 1).
    let expect: Vec<Vec<(SummaryKind, String)>> = [&g1, &g2]
        .iter()
        .map(|g| {
            FIVE_KINDS
                .iter()
                .map(|(k, _)| (*k, write_graph(&summarize(g, *k).graph)))
                .collect()
        })
        .collect();

    let (handle, service) = start(1, 16);
    let addr = handle.addr();
    let expect = &expect;
    std::thread::scope(|scope| {
        for c in 0..8 {
            let (p1, p2) = (p1.clone(), p2.clone());
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..4 {
                    let which = (c + round) % 2;
                    let p = if which == 0 { &p1 } else { &p2 };
                    let path = p.to_str().unwrap();
                    let r = client.load(path).unwrap();
                    assert!(r.is_ok(), "{}", r.status);
                    for (kind, body) in &expect[which] {
                        let r = client.summarize(*kind, path).unwrap();
                        if r.is_ok() {
                            assert_eq!(
                                r.body_str(),
                                Some(body.as_str()),
                                "wrong summary bytes for {kind}"
                            );
                        } else {
                            // A racing EVICT may have unloaded the graph
                            // between our LOAD and this request; that is
                            // the only legitimate failure.
                            assert!(
                                r.status.starts_with("ERR summarize: no graph loaded"),
                                "{}",
                                r.status
                            );
                        }
                    }
                    if c % 4 == 3 {
                        let r = client.evict(Some(path)).unwrap();
                        assert!(
                            r.is_ok() || r.status.starts_with("ERR evict: no graph loaded"),
                            "{}",
                            r.status
                        );
                    }
                    let stats = client.stats().unwrap();
                    assert!(stats.is_ok(), "{}", stats.status);
                }
                client.quit().unwrap();
            });
        }
    });
    // Single-flight still bounds rebuild storms: never more builds than
    // requests, and the service is consistent afterwards.
    let st = service.stats();
    assert_eq!(st.builds, st.misses);
    assert!(service.builds() >= 10);
    handle.shutdown();
}

/// The delta-serving contract over real TCP: a single-triple `UPDATE`
/// patches the warm weak summary in place (no rebuild), the patched body
/// served under the new fingerprint is byte-identical to a cold build of
/// the updated graph, a delete falls back to a rebuild, and the STATS
/// line carries the new `updates`/`patches`/`patch_fallbacks` counters.
#[test]
fn update_patches_warm_weak_summary_over_the_wire() {
    let dir = workdir("update");
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    let path = dir.join("book.nt");
    save_path(&g, &path).unwrap();
    let path_str = path.to_str().unwrap();

    let (handle, service) = start(1, 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load(path_str).unwrap();
    let cold = client.summarize(SummaryKind::Weak, path_str).unwrap();
    assert_eq!(cold.field("cached"), Some("0"));
    let builds_before = service.builds();

    // Insert one data triple: the warm weak summary must be *patched*
    // across the fingerprint transition, not rebuilt.
    let payload = "<http://pr8/s> <http://pr8/p> <http://pr8/o> .";
    let r = client.update(path_str, true, payload).unwrap();
    assert!(r.is_ok(), "{}", r.status);
    assert_eq!(r.field("applied"), Some("1"));
    assert_eq!(r.field("patched"), Some("1"));
    assert_eq!(r.field("rebuilt"), Some("0"));
    assert_eq!(service.builds(), builds_before, "a patch must not rebuild");
    assert_ne!(r.field("fp"), cold.field("fp"), "fingerprint must move");

    // The patched artifact serves as a warm hit under the new fingerprint…
    let hit = client.summarize(SummaryKind::Weak, path_str).unwrap();
    assert_eq!(hit.field("cached"), Some("1"));
    assert_eq!(hit.field("fp"), r.field("fp"));
    // …byte-identical to a cold build over the same updated content.
    let mut updated = g.clone();
    updated
        .insert(
            Term::iri("http://pr8/s"),
            Term::iri("http://pr8/p"),
            Term::iri("http://pr8/o"),
        )
        .unwrap();
    let expect = write_graph(&summarize(&updated, SummaryKind::Weak).graph);
    assert_eq!(hit.body_str(), Some(expect.as_str()));

    // Deleting the triple falls back to a rebuild (quotient summaries are
    // not decremental) and restores the original fingerprint + bytes.
    let del = client.update(path_str, false, payload).unwrap();
    assert!(del.is_ok(), "{}", del.status);
    assert_eq!(del.field("applied"), Some("1"));
    assert_eq!(del.field("patched"), Some("0"));
    assert_eq!(del.field("rebuilt"), Some("1"));
    assert_eq!(del.field("fp"), cold.field("fp"));
    let back = client.summarize(SummaryKind::Weak, path_str).unwrap();
    assert_eq!(back.field("cached"), Some("1"));
    assert_eq!(back.body, cold.body);

    // STATS reports the new counters and the CI invariant holds:
    // every build is either a patch fallback or a plain cache miss.
    let stats = client.stats().unwrap();
    assert_eq!(stats.field("updates"), Some("2"));
    assert_eq!(stats.field("patches"), Some("1"));
    assert_eq!(stats.field("patch_fallbacks"), Some("1"));
    let field = |k: &str| stats.field(k).unwrap().parse::<u64>().unwrap();
    assert_eq!(field("builds"), field("patch_fallbacks") + field("misses"));

    // Error paths: malformed payload, bad triple, unknown graph — all
    // clean ERRs that keep the connection serving.
    let bad = client.update(path_str, true, "not ntriples").unwrap();
    assert!(bad.status.starts_with("ERR update:"), "{}", bad.status);
    let missing = client.update("/nope.nt", true, payload).unwrap();
    assert!(
        missing.status.starts_with("ERR update:"),
        "{}",
        missing.status
    );
    assert!(client.ping().unwrap().is_ok());
    handle.shutdown();
}

/// The CLI front-end end to end: `rdfsummary serve` prints its resolved
/// address, `rdfsummary client` scripts LOAD / SUMMARIZE / STATS against
/// it, and the piped SUMMARIZE body equals the CLI's --out bytes.
#[test]
fn cli_serve_and_client_roundtrip() {
    use std::io::{BufRead, BufReader};
    let dir = workdir("cli");
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    let path = dir.join("book.nt");
    save_path(&g, &path).unwrap();
    let path_str = path.to_str().unwrap();

    let mut serve = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "1"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut first_line = String::new();
    BufReader::new(serve.stdout.as_mut().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    assert!(first_line.starts_with("listening on "), "{first_line}");
    let addr = first_line.split_whitespace().nth(2).unwrap().to_string();

    let run_client = |args: &[&str]| {
        let out = bin().arg("client").arg(&addr).args(args).output().unwrap();
        (out.status.success(), out.stdout, out.stderr)
    };

    let (ok, _, stderr) = run_client(&["PING"]);
    assert!(ok, "{}", String::from_utf8_lossy(&stderr));
    let (ok, _, stderr) = run_client(&["LOAD", path_str]);
    assert!(ok);
    assert!(String::from_utf8_lossy(&stderr).starts_with("OK loaded"));
    // SUMMARIZE body goes to stdout: compare against the single-shot CLI.
    let out_file = dir.join("weak.nt");
    let cli = bin()
        .args(["summarize", path_str, "--kind", "w", "--threads", "1"])
        .args(["--out", out_file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(cli.status.success());
    let (ok, stdout, _) = run_client(&["SUMMARIZE", "w", path_str]);
    assert!(ok);
    assert_eq!(stdout, std::fs::read(&out_file).unwrap());
    // Errors surface as nonzero exit + the ERR status.
    let (ok, _, stderr) = run_client(&["SUMMARIZE", "w", "/not/loaded.nt"]);
    assert!(!ok);
    assert!(String::from_utf8_lossy(&stderr).contains("ERR summarize:"));
    let (ok, _, _) = run_client(&["QUIT"]);
    assert!(ok);

    serve.kill().unwrap();
    serve.wait().unwrap();
}
