//! Golden-equivalence suite for the dense summarization pipeline.
//!
//! The `SummaryContext` refactor replaced every per-node hash map in the
//! clique/partition/quotient stack with `Vec`-indexed dense arrays. These
//! tests pin the refactor down: on the paper's book graph, BSBM, LUBM and
//! every `shapes` generator, each of the five summaries produced by the
//! dense pipeline must be **triple-for-triple and naming-identical** to
//! the preserved pre-refactor builders (`rdfsum_core::reference`), which
//! still use the original hash-map implementation.

use rdfsummary::rdf_io::write_graph;
use rdfsummary::rdf_store::TripleStore;
use rdfsummary::rdfsum_core::{reference_summary, Summary, SummaryContext, SummaryKind};
use rdfsummary::rdfsum_workloads as workloads;
use workloads::{shapes, BsbmConfig, LubmConfig};

/// All five summaries the dense pipeline builds.
const KINDS: [SummaryKind; 5] = [
    SummaryKind::Weak,
    SummaryKind::Strong,
    SummaryKind::TypedWeak,
    SummaryKind::TypedStrong,
    SummaryKind::TypeBased,
];

/// Canonical N-Triples lines: equal ⇔ triple-for-triple and
/// naming-identical (every minted URI matches literally).
fn canonical(s: &Summary) -> Vec<String> {
    let mut v: Vec<String> = write_graph(&s.graph).lines().map(String::from).collect();
    v.sort();
    v
}

fn assert_golden(name: &str, g: &rdfsummary::rdf_model::Graph) {
    let ctx = SummaryContext::new(g);
    for kind in KINDS {
        let dense = ctx.summarize(kind);
        let oracle = reference_summary(g, kind);
        assert_eq!(
            canonical(&dense),
            canonical(&oracle),
            "dense {kind} summary diverged from the pre-refactor oracle on {name}"
        );
        // The correspondence maps stay well-formed too.
        assert!(dense.check_correspondence_invariants(), "{name}/{kind}");
    }
    assert_sharded_matches(name, g);
}

/// The shard-merged substrate must be summary-equivalent to the sequential
/// context — triple for triple, minted name for minted name — for all
/// five kinds, at forced shard counts the auto path would never pick on
/// these sizes (so CI exercises the absorb/remap and clique-merge paths
/// even on single-core hosts). Shard counts past the run/triple count
/// cover the empty-shard edge case.
fn assert_sharded_matches(name: &str, g: &rdfsummary::rdf_model::Graph) {
    let seq = SummaryContext::new(g);
    for shards in [2, 3, 7, 16] {
        let ctx = SummaryContext::sharded_forced(g, shards);
        for kind in KINDS {
            assert_eq!(
                canonical(&ctx.summarize(kind)),
                canonical(&seq.summarize(kind)),
                "sharded {kind} summary diverged at {shards} shards on {name}"
            );
        }
    }
}

/// Store-driven sharded builds (subject-range SPO shards + object-range
/// OSP shards) match the sequential store-driven context for the four
/// principal kinds.
fn assert_store_sharded_matches(name: &str, g: &rdfsummary::rdf_model::Graph) {
    let store = TripleStore::new(g.clone());
    let seq = SummaryContext::from_store(&store);
    for shards in [2, 5] {
        let ctx = SummaryContext::sharded_from_store_forced(&store, shards);
        for kind in SummaryKind::ALL {
            assert_eq!(
                canonical(&ctx.summarize(kind)),
                canonical(&seq.summarize(kind)),
                "store-sharded {kind} summary diverged at {shards} shards on {name}"
            );
        }
    }
}

/// The store-driven context (sorted SPO/OSP index scans, different node
/// numbering) must still produce identical canonical summaries for the
/// four principal kinds.
fn assert_store_context_matches(name: &str, g: &rdfsummary::rdf_model::Graph) {
    let store = TripleStore::new(g.clone());
    let ctx = SummaryContext::from_store(&store);
    for kind in SummaryKind::ALL {
        let via_store = ctx.summarize(kind);
        let oracle = reference_summary(store.graph(), kind);
        assert_eq!(
            canonical(&via_store),
            canonical(&oracle),
            "store-driven {kind} summary diverged on {name}"
        );
    }
    assert_store_sharded_matches(name, g);
}

#[test]
fn golden_book_graph() {
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    assert_golden("book_graph", &g);
    assert_store_context_matches("book_graph", &g);
}

#[test]
fn golden_paper_sample_and_figures() {
    use rdfsummary::rdfsum_core::fixtures;
    for (name, g) in [
        ("sample_graph", fixtures::sample_graph()),
        ("figure5", fixtures::figure5_graph()),
        ("figure8", fixtures::figure8_graph()),
        ("figure10", fixtures::figure10_graph()),
    ] {
        assert_golden(name, &g);
        assert_store_context_matches(name, &g);
    }
}

#[test]
fn golden_bsbm() {
    let g = workloads::generate_bsbm(&BsbmConfig {
        products: 60,
        seed: 0xBEEF,
        ..Default::default()
    });
    assert!(g.len() > 3_000, "BSBM graph unexpectedly small");
    assert_golden("bsbm_60", &g);
    assert_store_context_matches("bsbm_60", &g);
}

#[test]
fn golden_lubm() {
    let g = workloads::generate_lubm(&LubmConfig {
        universities: 1,
        seed: 0xCE,
        ..Default::default()
    });
    assert!(g.len() > 1_000, "LUBM graph unexpectedly small");
    assert_golden("lubm_1", &g);
    assert_store_context_matches("lubm_1", &g);
}

#[test]
fn golden_shapes_star() {
    assert_golden("star_300", &shapes::star(300));
}

#[test]
fn golden_shapes_chain() {
    assert_golden("chain_300", &shapes::chain(300));
}

#[test]
fn golden_shapes_weak_chain() {
    assert_golden("weak_chain_80", &shapes::weak_chain(80));
}

#[test]
fn golden_shapes_random() {
    for seed in [1u64, 42, 0xABCD] {
        let g = shapes::random(&shapes::RandomConfig {
            seed,
            ..Default::default()
        });
        assert_golden(&format!("random_{seed:#x}"), &g);
        assert_store_context_matches(&format!("random_{seed:#x}"), &g);
    }
}
