//! Warm-restart integration suite: a `serve --persist-dir DIR` process is
//! killed and restarted on the same directory, and the restarted server
//! must answer its first `SUMMARIZE` from the persisted artifact —
//! byte-identical to the single-shot CLI's `--out` bytes, with `builds`
//! still at 0 — while any on-disk damage degrades to a plain rebuild
//! with no error surfaced to the client.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdfsummary"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdfsummary_restart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns `serve --persist-dir` on an ephemeral port and parses the
/// resolved address from the startup handshake line.
fn spawn_server(persist_dir: &Path) -> (Child, String) {
    let mut serve = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "1"])
        .args(["--persist-dir", persist_dir.to_str().unwrap()])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut first_line = String::new();
    BufReader::new(serve.stdout.as_mut().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    assert!(first_line.starts_with("listening on "), "{first_line}");
    let addr = first_line.split_whitespace().nth(2).unwrap().to_string();
    (serve, addr)
}

fn run_client(addr: &str, args: &[&str]) -> (bool, Vec<u8>, String) {
    let out = bin().arg("client").arg(addr).args(args).output().unwrap();
    (
        out.status.success(),
        out.stdout,
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Pulls `key=value` out of an `OK …` status line.
fn stat(status: &str, key: &str) -> u64 {
    status
        .split_whitespace()
        .find_map(|w| w.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {status}"))
        .parse()
        .unwrap()
}

/// Kill → restart → first SUMMARIZE is byte-identical to the cold CLI
/// output and costs zero builds.
#[test]
fn restarted_server_comes_back_warm_and_byte_identical() {
    let dir = workdir("warm");
    let persist = dir.join("artifacts");
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    let path = dir.join("book.nt");
    rdf_io::save_path(&g, &path).unwrap();
    let path_str = path.to_str().unwrap();

    // Reference bytes from the single-shot CLI.
    let out_file = dir.join("weak.nt");
    let cli = bin()
        .args(["summarize", path_str, "--kind", "w", "--threads", "1"])
        .args(["--out", out_file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(cli.status.success());
    let cli_bytes = std::fs::read(&out_file).unwrap();

    // Cold run: LOAD + SUMMARIZE builds and persists one artifact.
    let (mut serve, addr) = spawn_server(&persist);
    let (ok, _, stderr) = run_client(&addr, &["LOAD", path_str]);
    assert!(ok, "{stderr}");
    let (ok, body, stderr) = run_client(&addr, &["SUMMARIZE", "w", path_str]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("cached=0"), "{stderr}");
    assert_eq!(body, cli_bytes);
    let (_, _, stats) = run_client(&addr, &["STATS"]);
    assert_eq!(stat(&stats, "builds"), 1);
    assert_eq!(stat(&stats, "persist_writes"), 1);
    assert_eq!(stat(&stats, "persist_hits"), 0);
    serve.kill().unwrap();
    serve.wait().unwrap();
    assert_eq!(
        std::fs::read_dir(&persist)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "sum"))
            .count(),
        1,
        "exactly one artifact on disk after the cold run"
    );

    // Warm run: same dir, fresh process. The first SUMMARIZE must be a
    // hit served from disk — no build — and byte-identical.
    let (mut serve, addr) = spawn_server(&persist);
    let (ok, _, stderr) = run_client(&addr, &["LOAD", path_str]);
    assert!(ok, "{stderr}");
    let (ok, body, stderr) = run_client(&addr, &["SUMMARIZE", "w", path_str]);
    assert!(ok, "{stderr}");
    assert!(
        stderr.contains("cached=1"),
        "warm first hit must report cached=1: {stderr}"
    );
    assert_eq!(body, cli_bytes, "warm body differs from cold CLI output");
    let (_, _, stats) = run_client(&addr, &["STATS"]);
    assert_eq!(stat(&stats, "builds"), 0, "warm path must not rebuild");
    assert_eq!(stat(&stats, "persist_hits"), 1);
    assert_eq!(stat(&stats, "misses"), 0);
    assert_eq!(
        stat(&stats, "builds"),
        stat(&stats, "patch_fallbacks") + stat(&stats, "misses")
    );
    serve.kill().unwrap();
    serve.wait().unwrap();
}

/// On-disk damage is invisible to clients: the restarted server rebuilds
/// (no ERR, correct bytes) and heals the artifact for the next restart.
#[test]
fn corrupt_artifact_degrades_to_a_clean_rebuild() {
    let dir = workdir("corrupt");
    let persist = dir.join("artifacts");
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    let path = dir.join("book.nt");
    rdf_io::save_path(&g, &path).unwrap();
    let path_str = path.to_str().unwrap();

    let (mut serve, addr) = spawn_server(&persist);
    run_client(&addr, &["LOAD", path_str]);
    let (ok, cold_body, _) = run_client(&addr, &["SUMMARIZE", "w", path_str]);
    assert!(ok);
    serve.kill().unwrap();
    serve.wait().unwrap();

    // Flip a byte in the middle of the persisted artifact.
    let sum = std::fs::read_dir(&persist)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "sum"))
        .unwrap();
    let mut raw = std::fs::read(&sum).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x40;
    std::fs::write(&sum, raw).unwrap();

    let (mut serve, addr) = spawn_server(&persist);
    run_client(&addr, &["LOAD", path_str]);
    let (ok, body, stderr) = run_client(&addr, &["SUMMARIZE", "w", path_str]);
    assert!(ok, "corruption must not surface as an ERR: {stderr}");
    assert!(
        stderr.contains("cached=0"),
        "corrupt artifact must read as a plain miss: {stderr}"
    );
    assert_eq!(body, cold_body);
    let (_, _, stats) = run_client(&addr, &["STATS"]);
    assert_eq!(stat(&stats, "builds"), 1);
    assert_eq!(stat(&stats, "persist_hits"), 0);
    assert_eq!(
        stat(&stats, "persist_writes"),
        1,
        "rebuild must re-persist over the damage"
    );
    serve.kill().unwrap();
    serve.wait().unwrap();
}
