//! QUERY serving correctness: the service's summary-pruned, plan-ordered
//! evaluation must be **set-identical** to the un-pruned dynamic
//! [`Evaluator`] on every fixture graph, for every summary kind — pruning
//! and join ordering are pure optimizations, never visible in answers.
//!
//! The query mix per fixture is derived from the graph's own vocabulary
//! (so every fixture exercises non-empty single patterns, joins, type
//! patterns and constants) plus queries that are guaranteed empty, where
//! the suite additionally asserts that the summary actually *pruned*
//! them (the unknown-property/class cases are provably empty on any
//! quotient summary).

use rdfsummary::prelude::*;
use rdfsummary::rdfsum_core::{fixtures, SummaryService};
use rdfsummary::rdfsum_workloads as workloads;
use std::collections::BTreeSet;

/// The five kinds the serving path must answer identically (the four
/// principal summaries plus the type-based one).
const FIVE_KINDS: [SummaryKind; 5] = [
    SummaryKind::Weak,
    SummaryKind::Strong,
    SummaryKind::TypedWeak,
    SummaryKind::TypedStrong,
    SummaryKind::TypeBased,
];

/// Every fixture graph of the correctness matrix.
fn fixture_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("book", fixtures::book_graph()),
        ("sample", fixtures::sample_graph()),
        ("figure5", fixtures::figure5_graph()),
        ("figure8", fixtures::figure8_graph()),
        ("figure10", fixtures::figure10_graph()),
        (
            "bsbm",
            workloads::generate_bsbm(&BsbmConfig::with_products(20)),
        ),
        (
            "lubm",
            workloads::generate_lubm(&LubmConfig::with_universities(1)),
        ),
        ("star", workloads::star(12)),
        ("chain", workloads::chain(12)),
        ("weak_chain", workloads::weak_chain(4)),
    ]
}

/// Builds a query mix out of the graph's own vocabulary. The second
/// tuple element marks queries that are *provably* empty on any summary
/// (their property/class does not exist in the graph), where pruning
/// must fire.
fn query_mix(g: &Graph) -> Vec<(String, bool)> {
    let mut props: Vec<String> = g
        .data_properties()
        .into_iter()
        .map(|p| g.dict().decode(p).to_string())
        .collect();
    props.sort();
    let mut classes: Vec<String> = g
        .types()
        .iter()
        .map(|t| g.dict().decode(t.o).to_string())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    classes.dedup();

    let mut mix = Vec::new();
    if let Some(p0) = props.first() {
        mix.push((format!("q(?x, ?y) :- ?x {p0} ?y"), false));
        mix.push((format!("q() :- ?x {p0} ?y, ?y {p0} ?z"), false));
        if let Some(p1) = props.get(1) {
            mix.push((format!("q(?x) :- ?x {p0} ?y, ?x {p1} ?z"), false));
        }
        // Constants from a real triple: non-empty by construction. Blank
        // nodes have no query-parser syntax, so pick a blank-free triple.
        let blank_free = g.data().iter().find(|t| {
            !g.dict().decode(t.s).to_string().starts_with("_:")
                && !g.dict().decode(t.o).to_string().starts_with("_:")
        });
        if let Some(t) = blank_free {
            let s = g.dict().decode(t.s).to_string();
            let p = g.dict().decode(t.p).to_string();
            let o = g.dict().decode(t.o).to_string();
            mix.push((format!("q(?y) :- {s} {p} ?y"), false));
            mix.push((format!("q() :- ?x {p} {o}"), false));
        }
    }
    if let Some(c0) = classes.first() {
        mix.push((format!("q(?x) :- ?x a {c0}"), false));
        if let Some(p0) = props.first() {
            mix.push((format!("q(?x) :- ?x a {c0}, ?x {p0} ?y"), false));
        }
    }
    // Guaranteed empty: vocabulary that exists in no fixture.
    mix.push((
        "q() :- ?x <http://example.org/no-such-property> ?y".into(),
        true,
    ));
    mix.push((
        "q(?x) :- ?x a <http://example.org/NoSuchClass>".into(),
        true,
    ));
    mix
}

/// Reference answers: the plain dynamic evaluator, no pruning, no plan.
fn reference_rows(store: &TripleStore, text: &str) -> (BTreeSet<Vec<String>>, bool) {
    let spec = parse_query(text, &PrefixMap::with_defaults()).unwrap();
    let q = compile(&spec, store.graph()).unwrap();
    let ev = Evaluator::new(store);
    if spec.is_boolean() {
        return (BTreeSet::new(), ev.ask(&q));
    }
    let rows: BTreeSet<Vec<String>> = ev
        .select(&q)
        .decode(store)
        .into_iter()
        .map(|row| row.into_iter().map(|t| t.to_string()).collect())
        .collect();
    let ask = !rows.is_empty();
    (rows, ask)
}

/// The matrix: every fixture × every kind × the fixture's query mix,
/// service answers vs. the un-pruned evaluator.
#[test]
fn query_serving_matches_unpruned_evaluation_on_all_fixtures() {
    for (name, g) in fixture_graphs() {
        let reference = TripleStore::new(g.clone());
        let mix = query_mix(&g);
        assert!(mix.len() >= 4, "{name}: degenerate query mix");
        let service = SummaryService::new(2);
        service.load_graph(name, g);
        for kind in FIVE_KINDS {
            for (text, provably_empty) in &mix {
                let out = service
                    .query(name, text, Some(kind), usize::MAX)
                    .unwrap_or_else(|e| panic!("{name}/{kind:?}/{text}: {e}"));
                let (want_rows, want_ask) = reference_rows(&reference, text);
                let got_rows: BTreeSet<Vec<String>> = out.rows.iter().cloned().collect();
                assert_eq!(
                    got_rows, want_rows,
                    "{name} × {kind:?}: rows diverged for `{text}`"
                );
                assert_eq!(
                    out.ask, want_ask,
                    "{name} × {kind:?}: ask diverged for `{text}`"
                );
                if out.pruned {
                    // Pruning must never fire on a non-empty answer.
                    assert!(!want_ask, "{name} × {kind:?}: pruned non-empty `{text}`");
                }
                if *provably_empty {
                    assert!(
                        out.pruned,
                        "{name} × {kind:?}: summary failed to prune `{text}`"
                    );
                }
            }
        }
    }
}

/// The same contract over the wire: a live server's QUERY responses
/// carry exactly the reference rows (order-insensitively) for a couple
/// of representative queries.
#[test]
fn wire_query_matches_reference() {
    use rdfsummary::rdfsum_server::Client;
    let dir = std::env::temp_dir().join(format!("rdfsummary_qs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let g = fixtures::book_graph();
    let path = dir.join("book.nt");
    save_path(&g, &path).unwrap();
    let name = path.to_str().unwrap();
    let reference = TripleStore::new(g.clone());

    let service = std::sync::Arc::new(SummaryService::new(2));
    let handle = rdfsummary::rdfsum_server::spawn("127.0.0.1:0", service, 2).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.load(name).unwrap().is_ok());

    for (text, _) in query_mix(&g) {
        let resp = client.query(name, &text).unwrap();
        assert!(resp.is_ok(), "`{text}` → {}", resp.status);
        let (want_rows, want_ask) = reference_rows(&reference, &text);
        let body = resp.body_str().unwrap();
        let mut lines = body.lines();
        let spec = parse_query(&text, &PrefixMap::with_defaults()).unwrap();
        if spec.is_boolean() {
            assert_eq!(
                body,
                if want_ask { "true\n" } else { "false\n" },
                "`{text}`"
            );
        } else {
            let header = lines.next().unwrap();
            assert_eq!(header.split('\t').count(), spec.head.len(), "`{text}`");
            let got: BTreeSet<Vec<String>> = lines
                .map(|l| l.split('\t').map(str::to_string).collect())
                .collect();
            assert_eq!(got, want_rows, "`{text}` rows diverged over the wire");
            assert_eq!(
                resp.field("rows"),
                Some(want_rows.len().to_string().as_str())
            );
        }
    }
    handle.shutdown();
}
