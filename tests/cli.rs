//! Integration tests driving the `rdfsummary` CLI binary end to end.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdfsummary"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdfsummary_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_file(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("sample.nt");
    let g = rdfsummary::rdfsum_core::fixtures::sample_graph();
    rdfsummary::rdf_io::save_path(&g, &path).unwrap();
    path
}

#[test]
fn help_and_unknown_command() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn stats_on_sample() {
    let dir = workdir();
    let file = sample_file(&dir);
    let out = bin().arg("stats").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("triples"));
    assert!(text.contains("well-behaved: yes"));
}

#[test]
fn summarize_with_outputs() {
    let dir = workdir();
    let file = sample_file(&dir);
    let out_nt = dir.join("weak.nt");
    let out_dot = dir.join("weak.dot");
    let out = bin()
        .args(["summarize", file.to_str().unwrap()])
        .args(["--kind", "w"])
        .args(["--out", out_nt.to_str().unwrap()])
        .args(["--dot", out_dot.to_str().unwrap()])
        .arg("--report")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("W summary"));
    assert!(text.contains("nodes (by extent)"));
    // The N-Triples output reparses to the same number of triples (10).
    let reparsed = rdfsummary::rdf_io::load_path(&out_nt).unwrap();
    assert_eq!(reparsed.len(), 10);
    assert!(std::fs::read_to_string(&out_dot)
        .unwrap()
        .starts_with("digraph"));
}

#[test]
fn summarize_all_shares_one_context() {
    let dir = workdir();
    let file = sample_file(&dir);
    let out = bin()
        .args(["summarize", file.to_str().unwrap(), "--all"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("shared context"), "got: {text}");
    for kind in ["W:", "S:", "TW:", "TS:"] {
        assert!(text.contains(kind), "missing {kind} in:\n{text}");
    }

    // --all rejects single-summary output flags instead of silently
    // ignoring them.
    let out = bin()
        .args(["summarize", file.to_str().unwrap(), "--all"])
        .args(["--out", "/tmp/ignored.nt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--all cannot be combined"));
}

/// `--threads N` (and the `RDFSUM_THREADS` fallback) route through the
/// sharded substrate build; output is identical to the sequential run,
/// and bad values are rejected.
#[test]
fn summarize_with_threads_flag() {
    let dir = workdir();
    let file = sample_file(&dir);
    let sequential = bin()
        .args(["summarize", file.to_str().unwrap(), "--kind", "s"])
        .args(["--threads", "1"])
        .output()
        .unwrap();
    assert!(sequential.status.success());
    let threaded = bin()
        .args(["summarize", file.to_str().unwrap(), "--kind", "s"])
        .args(["--threads", "4"])
        .output()
        .unwrap();
    assert!(
        threaded.status.success(),
        "{}",
        String::from_utf8_lossy(&threaded.stderr)
    );
    let strip_timing = |out: &[u8]| -> String {
        let text = String::from_utf8_lossy(out).into_owned();
        // Drop the wall-clock suffix, which legitimately differs.
        text.split(" in ").next().unwrap_or(&text).to_string()
    };
    assert_eq!(
        strip_timing(&sequential.stdout),
        strip_timing(&threaded.stdout)
    );

    // The env fallback is accepted too (value validated the same way).
    let out = bin()
        .args(["summarize", file.to_str().unwrap(), "--all"])
        .env("RDFSUM_THREADS", "2")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("2 worker(s) requested"));

    for bad in ["0", "lots"] {
        let out = bin()
            .args(["summarize", file.to_str().unwrap()])
            .args(["--threads", bad])
            .output()
            .unwrap();
        assert!(!out.status.success(), "--threads {bad} should be rejected");
        assert!(String::from_utf8_lossy(&out.stderr).contains("bad --threads"));
        let out = bin()
            .args(["summarize", file.to_str().unwrap()])
            .env("RDFSUM_THREADS", bad)
            .output()
            .unwrap();
        assert!(!out.status.success());
        assert!(String::from_utf8_lossy(&out.stderr).contains("bad RDFSUM_THREADS"));
    }
}

#[test]
fn generate_snapshot_stats_pipeline() {
    let dir = workdir();
    let snap = dir.join("bsbm.snap");
    let out = bin()
        .args(["generate", "bsbm", "--scale", "20"])
        .args(["--out", snap.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin().arg("stats").arg(&snap).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("class nodes"));

    let out = bin()
        .args(["summarize", snap.to_str().unwrap(), "--kind", "ts"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("TS summary"));
}

#[test]
fn query_with_saturation() {
    let dir = workdir();
    // The §2.1 book graph: the query needs saturation to answer.
    let path = dir.join("book.nt");
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    rdfsummary::rdf_io::save_path(&g, &path).unwrap();
    let query =
        "q(?name) :- ?b <http://example.org/hasAuthor> ?a, ?a <http://example.org/hasName> ?name";

    let out = bin()
        .args(["query", path.to_str().unwrap(), query])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no answers"));

    let out = bin()
        .args(["query", path.to_str().unwrap(), query, "--saturate"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("G. Simenon"));
}

#[test]
fn query_with_reformulation() {
    let dir = workdir();
    let path = dir.join("book2.nt");
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    rdfsummary::rdf_io::save_path(&g, &path).unwrap();
    // Complete answers over explicit triples only.
    let query =
        "q(?name) :- ?b <http://example.org/hasAuthor> ?a, ?a <http://example.org/hasName> ?name";
    let out = bin()
        .args(["query", path.to_str().unwrap(), query, "--reformulate"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("G. Simenon"), "got: {text}");
    assert!(text.contains("union of"));
}

#[test]
fn check_reports_properties() {
    let dir = workdir();
    let file = sample_file(&dir);
    let out = bin().arg("check").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for kind in ["W", "S", "TW", "TS"] {
        assert!(
            text.contains(&format!("{kind}:")),
            "missing {kind} in:\n{text}"
        );
    }
    assert!(text.contains("quotient OK"));
}

#[test]
fn saturate_writes_closure() {
    let dir = workdir();
    let path = dir.join("book.nt");
    let g = rdfsummary::rdfsum_core::fixtures::book_graph();
    rdfsummary::rdf_io::save_path(&g, &path).unwrap();
    let out_path = dir.join("book_inf.nt");
    let out = bin()
        .args(["saturate", path.to_str().unwrap()])
        .args(["--out", out_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let sat = rdfsummary::rdf_io::load_path(&out_path).unwrap();
    assert!(sat.len() > g.len());
}
