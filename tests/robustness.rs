//! Robustness and failure-injection tests: malformed inputs, degenerate
//! graphs, and adversarial shapes must produce errors or correct results —
//! never panics or wrong summaries.

use rdfsummary::prelude::*;
use rdfsummary::rdf_io::{parse_line, ParseErrorKind};
use rdfsummary::rdfsum_workloads as workloads;

#[test]
fn malformed_ntriples_report_errors_not_panics() {
    let cases = [
        "<a <p> <o> .",             // broken IRI
        "<a> <p> .",                // missing object
        "<a> <p> \"unterminated .", // unterminated literal
        "<a> <p> <o>",              // missing dot
        "\"lit\" <p> <o> .",        // literal subject (model error)
        "<a> \"p\" <o> .",          // literal property
        "<a> <p> \"x\"@ .",         // empty language tag
        "<a> <p> \"x\"^^ .",        // missing datatype
        "_: <p> <o> .",             // empty blank label
        "<a> <p> <o> . trailing",   // trailing garbage
    ];
    for c in cases {
        let result = parse_graph(c);
        assert!(result.is_err(), "should reject: {c}");
    }
}

#[test]
fn parse_error_positions() {
    let e = parse_line("<ok> <ok> §", 3).unwrap_err();
    assert_eq!(e.line, 3);
    assert!(matches!(
        e.kind,
        ParseErrorKind::Expected(_) | ParseErrorKind::InvalidIriChar(_)
    ));
}

#[test]
fn degenerate_graphs_summarize() {
    // Empty graph.
    let empty = Graph::new();
    for s in summarize_all(&empty) {
        assert!(s.graph.is_empty());
    }
    // Schema-only graph.
    let mut schema_only = Graph::new();
    schema_only.add_iri_triple("A", rdfsummary::rdf_model::vocab::RDFS_SUBCLASSOF, "B");
    for s in summarize_all(&schema_only) {
        assert_eq!(s.graph.schema().len(), 1);
        assert_eq!(s.graph.data().len(), 0);
    }
    // Types-only graph: everything lands on Nτ / class-set nodes.
    let mut types_only = Graph::new();
    for i in 0..10 {
        types_only.add_iri_triple(
            &format!("n{i}"),
            rdfsummary::rdf_model::vocab::RDF_TYPE,
            &format!("C{}", i % 3),
        );
    }
    let w = summarize(&types_only, SummaryKind::Weak);
    assert_eq!(w.n_summary_nodes(), 1, "all typed-only nodes share Nτ");
    assert_eq!(w.graph.types().len(), 3);
    let tw = summarize(&types_only, SummaryKind::TypedWeak);
    assert_eq!(tw.n_summary_nodes(), 3, "one node per class set");
}

#[test]
fn self_loops_and_reflexive_properties() {
    let mut g = Graph::new();
    g.add_iri_triple("a", "knows", "a");
    g.add_iri_triple("a", "knows", "b");
    g.add_iri_triple("b", "knows", "a");
    for s in summarize_all(&g) {
        assert!(rdfsummary::rdfsum_core::quotient::verify_quotient(&g, &s));
    }
    // Weak: a and b merge (co-sources and co-targets of knows) ⇒ one node
    // with a self-loop.
    let w = summarize(&g, SummaryKind::Weak);
    assert_eq!(w.graph.data().len(), 1);
    let t = w.graph.data()[0];
    assert_eq!(t.s, t.o);
}

#[test]
fn pathological_shapes() {
    // A huge star: one weak class for the hub… and one per distinct leaf
    // target clique.
    let star = workloads::star(500);
    let w = summarize(&star, SummaryKind::Weak);
    assert_eq!(w.stats().data_edges, 500); // Prop. 4: one per property

    // The weak chain of Figure 3: everything fuses into few nodes.
    let chain = workloads::weak_chain(100);
    let w = summarize(&chain, SummaryKind::Weak);
    // All 2k+1 r-resources are weakly equivalent (the paper's Figure 3).
    let g = &chain;
    let r0 = g.dict().lookup(&Term::iri("http://shapes/r0")).unwrap();
    let r_last = g
        .dict()
        .lookup(&Term::iri(format!("http://shapes/r{}", 2 * 100)))
        .unwrap();
    assert_eq!(w.representative(r0), w.representative(r_last));
}

#[test]
fn blank_nodes_survive_the_pipeline() {
    let doc = "_:b1 <http://x/p> _:b2 .\n_:b2 <http://x/q> \"v\" .\n";
    let g = parse_graph(doc).unwrap();
    let w = summarize(&g, SummaryKind::Weak);
    assert_eq!(w.graph.data().len(), 2);
    assert!(rdfsummary::rdfsum_core::quotient::verify_quotient(&g, &w));
}

#[test]
fn unicode_heavy_content() {
    let doc = "<http://x/célébrité> <http://x/说> \"naïve — ω ≤ Ω\"@fr .\n";
    let g = parse_graph(doc).unwrap();
    let text = write_graph(&g);
    let g2 = parse_graph(&text).unwrap();
    assert_eq!(g.len(), g2.len());
    let w = summarize(&g2, SummaryKind::Strong);
    assert_eq!(w.graph.data().len(), 1);
}

#[test]
fn queries_with_unknown_terms_are_empty_not_errors() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(5));
    let store = TripleStore::new(g);
    let q = parse_query(
        "q(?x) :- ?x <http://nowhere/prop> ?y",
        &PrefixMap::with_defaults(),
    )
    .unwrap();
    let cq = compile(&q, store.graph()).unwrap();
    assert!(cq.always_empty());
    assert!(Evaluator::new(&store).select(&cq).is_empty());
}

#[test]
fn summarize_is_deterministic_across_runs() {
    let g = workloads::generate_bsbm(&BsbmConfig::with_products(30));
    for kind in SummaryKind::ALL {
        let a = summarize(&g, kind);
        let b = summarize(&g, kind);
        assert_eq!(
            write_graph(&a.graph),
            write_graph(&b.graph),
            "{kind} not deterministic"
        );
    }
}
