//! `rdfsummary` — command-line interface to the summarization library.
//!
//! ```text
//! rdfsummary stats      <graph>
//! rdfsummary summarize  <graph> [--kind w|s|tw|ts|t|fb] [--all] [--out FILE] [--dot FILE] [--report]
//! rdfsummary saturate   <graph> [--out FILE]
//! rdfsummary check      <graph>
//! rdfsummary query      <graph> QUERY [--saturate] [--limit N]
//! rdfsummary generate   bsbm|lubm --scale N [--out FILE]
//! rdfsummary snapshot   <graph.nt> --out FILE.snap
//! rdfsummary serve      [--addr HOST:PORT] [--threads N] [--workers N]
//!                       [--cache-bytes N] [--engine event|threaded]
//!                       [--persist-dir DIR]
//! rdfsummary client     ADDR REQUEST…
//! ```
//!
//! `<graph>` is an N-Triples file, or a `.snap` binary snapshot (see
//! `rdf-store::snapshot`).

use rdfsummary::prelude::*;
use rdfsummary::rdf_store::snapshot;
use rdfsummary::rdfsum_core::{self, fixpoint_holds, render_report, ReportOptions};
use rdfsummary::rdfsum_workloads as workloads;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("run `rdfsummary help` for usage");
    ExitCode::FAILURE
}

fn usage() {
    println!(
        "rdfsummary — query-oriented RDF graph summarization

USAGE:
  rdfsummary stats      <graph> [--profile]             graph statistics
  rdfsummary summarize  <graph> [--kind w|s|tw|ts|t|fb]    build a summary
                         [--out FILE] [--dot FILE] [--turtle FILE] [--report]
                         [--all]  build W+S+TW+TS via one shared context
                         [--threads N]  shard the substrate build across N
                         workers (default: RDFSUM_THREADS or all cores;
                         small graphs always build sequentially)
  rdfsummary saturate   <graph> [--out FILE]            compute G∞
  rdfsummary check      <graph>                         verify formal properties
  rdfsummary query      <graph> QUERY [--saturate]      evaluate a BGP query
                         [--reformulate] [--limit N] [--explain]
  rdfsummary generate   bsbm|lubm --scale N [--out FILE] synthesize a dataset
  rdfsummary snapshot   <graph> --out FILE.snap         binary snapshot
  rdfsummary serve      [--addr HOST:PORT] [--threads N] [--workers N]
                         [--cache-bytes N] [--engine event|threaded]
                         [--persist-dir DIR]
                         long-running warm-store summary server (default
                         addr 127.0.0.1:7878; caches summaries by graph
                         content fingerprint, LRU-bounded by --cache-bytes;
                         the default event engine multiplexes all clients
                         on one poll loop, answers cheap verbs inline, and
                         --workers sizes the executor for LOAD/cold
                         SUMMARIZE; --persist-dir keeps built summaries
                         on disk so a restart comes back warm;
                         see `src/lib.rs` Serving)
  rdfsummary client     ADDR REQUEST…                   send one protocol
                         request (PING | LOAD <path> | SUMMARIZE <kind>
                         <graph> | QUERY <graph> <query> | UPDATE <graph>
                         <+|-> <triples…> | STATS | EVICT <graph>|* |
                         QUIT); body goes to stdout, status to stderr.
                         QUERY evaluates a BGP on the warm store with
                         summary-based emptiness pruning; UPDATE applies
                         an N-Triples batch and patches warm summaries

<graph> is an N-Triples file (.nt) or a binary snapshot (.snap).
QUERY uses the paper notation, e.g. \"q(?x) :- ?x a <http://…/Book>, ?x <http://…/author> ?y\""
    );
}

/// Graph loading and kind parsing are shared with the server crate, so
/// `rdfsummary serve` and the single-shot commands can never drift on the
/// load dispatch or the kind vocabulary (the server's byte-identity
/// contract depends on both agreeing).
use rdfsummary::rdfsum_server::{load_graph_file as load, parse_kind};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Worker/shard count for the summarize substrate: `--threads N`, else the
/// `RDFSUM_THREADS` env var, else all available cores. The count flows
/// through `SummaryContext::sharded`, whose size threshold keeps small
/// graphs (and therefore 1-CPU default runs) on the sequential path.
fn thread_count(rest: &[String]) -> Result<usize, String> {
    fn parse(v: &str, what: &str) -> Result<usize, String> {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad {what} value `{v}` (want an integer >= 1)")),
        }
    }
    if let Some(v) = flag_value(rest, "--threads") {
        return parse(&v, "--threads");
    }
    if let Ok(v) = std::env::var("RDFSUM_THREADS") {
        return parse(&v, "RDFSUM_THREADS");
    }
    Ok(std::thread::available_parallelism().map_or(1, usize::from))
}

fn cmd_stats(path: &str, rest: &[String]) -> Result<(), String> {
    let g = load(path)?;
    let st = GraphStats::of(&g);
    println!("graph: {path}");
    println!(
        "  triples        {:>10} (data {}, type {}, schema {})",
        st.edges, st.data_edges, st.type_edges, st.schema_edges
    );
    println!("  nodes          {:>10}", st.nodes);
    println!("  data nodes     {:>10}", st.data_nodes);
    println!("  class nodes    {:>10}", st.class_nodes);
    println!("  property nodes {:>10}", st.property_nodes);
    println!(
        "  distinct data properties {:>6}",
        st.data_distinct.properties
    );
    println!(
        "  distinct subjects        {:>6}",
        st.data_distinct.subjects
    );
    println!("  distinct objects         {:>6}", st.data_distinct.objects);
    let violations = g.well_behaved_violations();
    if violations.is_empty() {
        println!("  well-behaved: yes");
    } else {
        println!("  well-behaved: NO ({} offending terms)", violations.len());
    }
    if has_flag(rest, "--profile") {
        let prof = rdfsummary::rdf_model::Profile::of(&g);
        let prefixes = PrefixMap::with_defaults();
        let name = |id: rdfsummary::rdf_model::TermId| -> String {
            match g.dict().decode(id) {
                Term::Iri(iri) => prefixes.compact(iri),
                other => other.to_string(),
            }
        };
        println!(
            "\n  heterogeneity: {} distinct property sets, {} distinct class sets",
            prof.distinct_property_sets, prof.distinct_class_sets
        );
        println!("  top properties:");
        for (p, u) in prof.top_properties().into_iter().take(10) {
            println!(
                "    {:<60} {:>8} triples ({} subjects, {} objects)",
                name(p),
                u.triples,
                u.subjects,
                u.objects
            );
        }
        println!("  top classes:");
        for (c, n) in prof.top_classes().into_iter().take(10) {
            println!("    {:<60} {:>8} instances", name(c), n);
        }
    }
    Ok(())
}

/// `summarize --all`: builds W, S, TW and TS through one shared
/// [`rdfsum_core::SummaryContext`], so the dense numbering, CSR adjacency
/// and property cliques (both scopes) are computed once, not four times —
/// shard-parallel across `threads` workers on large graphs.
fn cmd_summarize_all(path: &str, g: &Graph, threads: usize) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    let ctx = rdfsum_core::SummaryContext::sharded(g, threads);
    let t_ctx = t0.elapsed().as_secs_f64();
    println!(
        "all summaries of {path} (input {} triples; shared context built in {t_ctx:.3}s, {threads} worker(s) requested):",
        g.len()
    );
    for kind in SummaryKind::ALL {
        let t0 = std::time::Instant::now();
        let s = ctx.summarize(kind);
        let dt = t0.elapsed().as_secs_f64();
        let st = s.stats();
        println!(
            "  {kind:>3}: {:>8} nodes  {:>8} edges  in {dt:.3}s",
            st.all_nodes, st.all_edges
        );
    }
    Ok(())
}

fn cmd_summarize(path: &str, rest: &[String]) -> Result<(), String> {
    if has_flag(rest, "--all") {
        // --all prints a comparison table; the single-summary output flags
        // have no meaning for it, so reject them instead of silently
        // ignoring a requested file.
        for flag in ["--kind", "--out", "--dot", "--turtle", "--report"] {
            if has_flag(rest, flag) {
                return Err(format!("summarize --all cannot be combined with {flag}"));
            }
        }
        let g = load(path)?;
        let threads = thread_count(rest)?;
        return cmd_summarize_all(path, &g, threads);
    }
    let g = load(path)?;
    let threads = thread_count(rest)?;
    let kind = match flag_value(rest, "--kind") {
        Some(k) => parse_kind(&k).ok_or(format!("unknown summary kind `{k}`"))?,
        None => SummaryKind::Weak,
    };
    let t0 = std::time::Instant::now();
    // The sharded substrate only pays off when the build will actually
    // shard; otherwise (small graph, one worker) keep the classic lean
    // single-summary path. Identical output either way.
    let s = if rdfsum_core::parallel::shard_count(g.data().len(), threads) > 1 {
        rdfsum_core::SummaryContext::sharded(&g, threads).summarize(kind)
    } else {
        summarize(&g, kind)
    };
    let dt = t0.elapsed().as_secs_f64();
    let st = s.stats();
    println!(
        "{kind} summary of {path}: {} nodes / {} edges (input {} triples) in {dt:.3}s",
        st.all_nodes,
        st.all_edges,
        g.len()
    );
    if let Some(out) = flag_value(rest, "--out") {
        save_path(&s.graph, &out).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    if let Some(ttl_path) = flag_value(rest, "--turtle") {
        let ttl = rdfsummary::rdf_io::write_turtle(&s.graph, &PrefixMap::with_defaults());
        std::fs::write(&ttl_path, ttl).map_err(|e| format!("writing {ttl_path}: {e}"))?;
        println!("wrote {ttl_path}");
    }
    if let Some(dot_path) = flag_value(rest, "--dot") {
        let dot = to_dot(&s.graph, &DotOptions::default());
        std::fs::write(&dot_path, dot).map_err(|e| format!("writing {dot_path}: {e}"))?;
        println!("wrote {dot_path}");
    }
    if has_flag(rest, "--report") {
        print!(
            "\n{}",
            render_report(
                &s,
                &g,
                &ReportOptions {
                    prefixes: PrefixMap::with_defaults(),
                    examples_per_node: 3,
                }
            )
        );
    }
    Ok(())
}

fn cmd_saturate(path: &str, rest: &[String]) -> Result<(), String> {
    let g = load(path)?;
    let sat = saturate(&g);
    println!(
        "saturated: {} -> {} triples (+{} implicit)",
        g.len(),
        sat.len(),
        sat.len() - g.len()
    );
    if let Some(out) = flag_value(rest, "--out") {
        save_path(&sat, &out).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_check(path: &str) -> Result<(), String> {
    let g = load(path)?;
    println!(
        "checking formal properties on {path} ({} triples)…",
        g.len()
    );
    for kind in SummaryKind::ALL {
        let s = summarize(&g, kind);
        let quotient_ok = rdfsum_core::quotient::verify_quotient(&g, &s);
        let fixpoint = fixpoint_holds(&g, kind);
        let completeness = rdfsum_core::completeness_check(&g, kind).holds;
        println!(
            "  {kind:>3}: quotient {}  fixpoint {}  completeness {}",
            if quotient_ok { "OK " } else { "BAD" },
            if fixpoint { "OK " } else { "BAD" },
            if completeness {
                "holds"
            } else {
                "fails (expected for typed kinds under ←↩d/↪→r)"
            },
        );
    }
    Ok(())
}

fn cmd_query(path: &str, rest: &[String]) -> Result<(), String> {
    let query_text = rest
        .iter()
        .find(|a| !a.starts_with("--") && a.contains(":-"))
        .ok_or("missing query (expected `q(?x) :- …`)")?;
    let limit: usize = flag_value(rest, "--limit")
        .map(|v| v.parse().map_err(|_| "bad --limit"))
        .transpose()?
        .unwrap_or(20);
    let mut g = load(path)?;
    if has_flag(rest, "--saturate") {
        g = saturate(&g);
    }
    let spec = parse_query(query_text, &PrefixMap::with_defaults())
        .map_err(|e| format!("query syntax: {e}"))?;
    let store = TripleStore::new(g);
    if has_flag(rest, "--reformulate") {
        // Complete answers over the explicit triples, via query rewriting.
        let union = rdfsummary::rdf_query::reformulate(
            &spec,
            store.graph(),
            &rdfsummary::rdf_query::ReformulateConfig::default(),
        )
        .map_err(|e| format!("reformulation: {e}"))?;
        println!("reformulated into a union of {} queries", union.len());
        let ev = Evaluator::new(&store);
        let mut seen = std::collections::BTreeSet::new();
        for q in &union {
            let cq = compile(q, store.graph()).map_err(|e| format!("compile: {e}"))?;
            for row in ev.select(&cq).decode(&store) {
                let cells: Vec<String> = row.iter().map(|t| t.to_string()).collect();
                seen.insert(cells.join("\t"));
            }
        }
        if seen.is_empty() {
            println!("no answers");
        } else {
            for row in &seen {
                println!("{row}");
            }
            println!("({} answers)", seen.len());
        }
        return Ok(());
    }
    let compiled = compile(&spec, store.graph()).map_err(|e| format!("compile: {e}"))?;
    if has_flag(rest, "--explain") {
        print!("{}", rdfsummary::rdf_query::explain(&store, &compiled));
    }
    let rs = Evaluator::new(&store).select_limit(&compiled, limit);
    if rs.is_empty() {
        println!("no answers");
        return Ok(());
    }
    println!("{}", rs.columns.join("\t"));
    for row in rs.decode(&store) {
        let cells: Vec<String> = row.iter().map(|t| t.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    println!("({} answers, limit {limit})", rs.len());
    Ok(())
}

fn cmd_generate(rest: &[String]) -> Result<(), String> {
    let family = rest.first().ok_or("expected `bsbm` or `lubm`")?;
    let scale: usize = flag_value(rest, "--scale")
        .ok_or("missing --scale N")?
        .parse()
        .map_err(|_| "bad --scale")?;
    let g = match family.as_str() {
        "bsbm" => workloads::generate_bsbm(&BsbmConfig::with_products(scale)),
        "lubm" => workloads::generate_lubm(&LubmConfig::with_universities(scale)),
        other => return Err(format!("unknown generator `{other}`")),
    };
    println!("generated {family} scale {scale}: {} triples", g.len());
    if let Some(out) = flag_value(rest, "--out") {
        if out.ends_with(".snap") {
            snapshot::save(&g, &out).map_err(|e| format!("writing {out}: {e}"))?;
        } else {
            save_path(&g, &out).map_err(|e| format!("writing {out}: {e}"))?;
        }
        println!("wrote {out}");
    }
    Ok(())
}

/// `serve`: the long-running warm-store summary server. `--threads`
/// bounds build/bulk-load parallelism (same meaning as for `summarize`);
/// `--workers` sizes the executor for the seconds-scale verbs (`LOAD`,
/// cold `SUMMARIZE`, `UPDATE`) — cheap verbs answer inline on the event
/// thread — and
/// never caps how many clients may stay connected (default
/// `max(threads, 4)`).
/// `--engine threaded` falls back to the thread-per-connection pool, where
/// `--workers` *is* the connection cap. `--cache-bytes N` puts an LRU byte
/// budget on the summary cache (default: unbounded). `--persist-dir DIR`
/// writes every built summary to DIR and probes it on cache misses, so a
/// restarted server answers its first `SUMMARIZE` without rebuilding. Runs
/// until the process is killed.
fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let addr = flag_value(rest, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let threads = thread_count(rest)?;
    let workers = match flag_value(rest, "--workers") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("bad --workers value `{v}` (want an integer >= 1)")),
        },
        None => threads.max(4),
    };
    let cache_bytes = match flag_value(rest, "--cache-bytes") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                return Err(format!("bad --cache-bytes value `{v}` (want a byte count)"));
            }
        },
        None => None,
    };
    let engine = flag_value(rest, "--engine").unwrap_or_else(|| "event".into());
    let mut service = rdfsum_core::SummaryService::with_cache_bytes(threads, cache_bytes);
    if let Some(dir) = flag_value(rest, "--persist-dir") {
        // Fail startup loudly on an unusable directory: once serving, all
        // persistence errors degrade silently, so this is the one chance
        // to tell the operator their artifacts aren't going anywhere.
        std::fs::create_dir_all(&dir).map_err(|e| format!("bad --persist-dir `{dir}`: {e}"))?;
        service = service.with_persist_dir(dir);
    }
    let service = std::sync::Arc::new(service);
    let handle = match engine.as_str() {
        "event" => rdfsummary::rdfsum_server::spawn(addr.as_str(), service, workers),
        "threaded" => rdfsummary::rdfsum_server::spawn_threaded(addr.as_str(), service, workers),
        other => {
            return Err(format!(
                "bad --engine value `{other}` (want event|threaded)"
            ))
        }
    }
    .map_err(|e| format!("binding {addr}: {e}"))?;
    // The resolved address line is the machine-readable startup handshake
    // (tests bind port 0 and read the real port from here).
    println!(
        "listening on {} ({workers} workers, {threads} build thread(s), {engine} engine)",
        handle.addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

/// `client`: one request against a running server; the body (summary
/// N-Triples, STATS listing, QUERY answer rows) goes to stdout so it can
/// be piped, the status line to stderr.
fn cmd_client(rest: &[String]) -> Result<(), String> {
    let (addr, words) = rest.split_first().ok_or("client: missing server address")?;
    if words.is_empty() {
        return Err("client: missing request (e.g. `client 127.0.0.1:7878 PING`)".into());
    }
    let request = words.join(" ");
    let mut client = rdfsummary::rdfsum_server::Client::connect(addr.as_str())
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let response = client
        .request(&request)
        .map_err(|e| format!("talking to {addr}: {e}"))?;
    eprintln!("{}", response.status);
    if let Some(body) = &response.body {
        use std::io::Write as _;
        std::io::stdout()
            .write_all(body)
            .map_err(|e| format!("writing body: {e}"))?;
    }
    if response.is_ok() {
        Ok(())
    } else {
        Err(format!("server answered: {}", response.status))
    }
}

fn cmd_snapshot(path: &str, rest: &[String]) -> Result<(), String> {
    let out = flag_value(rest, "--out").ok_or("missing --out FILE.snap")?;
    let g = load(path)?;
    snapshot::save(&g, &out).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out} ({} triples)", g.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        "stats" => match rest.first() {
            Some(p) => cmd_stats(p, &rest[1..]),
            None => Err("stats: missing graph file".into()),
        },
        "summarize" => match rest.first() {
            Some(p) => cmd_summarize(p, &rest[1..]),
            None => Err("summarize: missing graph file".into()),
        },
        "saturate" => match rest.first() {
            Some(p) => cmd_saturate(p, &rest[1..]),
            None => Err("saturate: missing graph file".into()),
        },
        "check" => match rest.first() {
            Some(p) => cmd_check(p),
            None => Err("check: missing graph file".into()),
        },
        "query" => match rest.first() {
            Some(p) => cmd_query(p, &rest[1..]),
            None => Err("query: missing graph file".into()),
        },
        "generate" => cmd_generate(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "snapshot" => match rest.first() {
            Some(p) => cmd_snapshot(p, &rest[1..]),
            None => Err("snapshot: missing graph file".into()),
        },
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => fail(&msg),
    }
}
