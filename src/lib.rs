//! # rdfsummary — query-oriented summarization of RDF graphs
//!
//! A complete Rust implementation of *“Query-Oriented Summarization of RDF
//! Graphs”* (Čebirić, Goasdoué, Manolescu): weak, strong, typed-weak and
//! typed-strong quotient summaries over an embedded RDF stack — data
//! model, N-Triples I/O, triple store, RDFS saturation, and a BGP/RBGP
//! query engine.
//!
//! This façade crate re-exports the workspace's public APIs; see the
//! member crates for the full documentation:
//!
//! * [`rdf_model`] — terms (including symbolic, lazily rendered
//!   [`rdf_model::Term::Minted`] summary names), dictionary encoding,
//!   graphs `⟨D_G, S_G, T_G⟩`;
//! * [`rdf_io`] — N-Triples parsing/serialization, DOT export;
//! * [`rdf_store`] — permutation-indexed triple store;
//! * [`rdf_schema`] — RDFS constraints and saturation `G → G∞`;
//! * [`rdf_query`] — BGP/RBGP queries, evaluation, workload sampling;
//! * [`rdfsum_core`] — cliques, equivalences, the four summaries, formal
//!   property checkers; summary nodes are minted symbolically (interned
//!   property/class-set keys, URI strings rendered only on output — see
//!   `rdfsum_core::naming`);
//! * [`rdfsum_workloads`] — BSBM-like / LUBM-like / shape generators;
//! * [`rdfsum_server`] — the warm-store summary server: a TCP line
//!   protocol over resident stores and a fingerprint-keyed summary cache.
//!
//! ## Quickstart
//!
//! ```
//! use rdfsummary::prelude::*;
//!
//! // Load (or build) a graph…
//! let graph = rdf_io::parse_graph(
//!     "<http://x/book1> <http://x/author> <http://x/alice> .\n\
//!      <http://x/book2> <http://x/author> <http://x/bob> .\n",
//! )
//! .unwrap();
//!
//! // …summarize it…
//! let summary = summarize(&graph, SummaryKind::Weak);
//! assert_eq!(summary.graph.data().len(), 1); // one `author` edge
//!
//! // …and use the summary to prune queries without touching the graph.
//! let q = rdf_query::parse_query(
//!     "q() :- ?x <http://x/price> ?y",
//!     &rdf_model::PrefixMap::with_defaults(),
//! )
//! .unwrap();
//! assert!(rdfsum_core::can_prune(&summary, &q));
//! ```
//!
//! ## Building & testing
//!
//! The workspace is hermetic: it builds offline with a stock Rust
//! toolchain and no crates.io dependencies (the `bytes`, `proptest` and
//! `criterion` APIs it uses are vendored as minimal shims under
//! `crates/shims/`). From the repository root:
//!
//! ```text
//! cargo build --release      # all nine crates + the `rdfsummary` CLI
//! cargo test -q              # unit, property, doc and integration tests
//! cargo bench --no-run       # compile the criterion-style benches
//! cargo bench -p rdfsum-bench --bench summarize   # run one bench suite
//! ```
//!
//! `cargo test -q` covers the whole workspace (the root `Cargo.toml` sets
//! `default-members` accordingly), including the integration suites
//! under `tests/`: `cli`, `end_to_end`, `golden_equivalence`,
//! `paper_example`, `properties`, `query_serving`, `robustness` and
//! `server`. Property tests default to 96 cases each; set
//! `PROPTEST_CASES` to change that. Setting `BENCH_JSON=<path>` while
//! running benches appends one JSON line per measurement (how
//! `BENCH_baseline.json` is produced).
//!
//! ## Serving
//!
//! `rdfsummary serve --addr HOST:PORT --threads N` starts the long-running
//! warm-store server ([`rdfsum_server`]): graphs are loaded once into
//! resident [`rdf_store::TripleStore`]s and every summary is cached under
//! the graph's content fingerprint ([`rdf_store::Fingerprint`], a
//! load-order-independent 128-bit digest folded over the sorted SPO
//! index). The protocol is one LF-terminated UTF-8 line per request, at
//! most 64 KiB:
//!
//! ```text
//! PING                       LOAD <path>
//! SUMMARIZE <kind> <graph>   QUERY <graph> <query>
//! UPDATE <graph> <+|-> <triples…>
//! STATS                      EVICT <graph> | EVICT *
//! QUIT
//! ```
//!
//! with `<kind>` ∈ `{w, s, tw, ts, t}` and `<graph>` the path the file
//! was loaded under. Responses are `OK field=value …` or
//! `ERR category: message` status lines; `SUMMARIZE`, `STATS` and
//! `QUERY` append a body framed by a final `bytes=<n>` field. A
//! `SUMMARIZE` body is the summary's N-Triples document,
//! **byte-identical** to what
//! `rdfsummary summarize --kind K --out FILE` writes for the same graph —
//! cached answers included, since the cache stores the serialized output
//! of the same build path. The cache is keyed by content, so re-loading
//! an identical file (or the same data under another path) stays warm,
//! and concurrent requests for a missing entry build it exactly once
//! (single-flight). `--cache-bytes N` puts an LRU byte budget on that
//! cache; evictions, hits and misses show up in `STATS`.
//!
//! `UPDATE` mutates a resident graph in place: `+` atomically inserts the
//! N-Triples statements packed on the rest of the line (all or nothing —
//! a malformed or capacity-violating statement rejects the whole batch),
//! `-` deletes them, silently skipping absent triples. The store's
//! 128-bit fingerprint is maintained **incrementally** — the commutative
//! lane-sum digest adds/subtracts exactly the touched triples, so the
//! post-batch fingerprint costs O(batch), not an SPO rescan — and the
//! answer is status-line-only: `OK update fp=<new> applied=<n>
//! patched=<0|1> rebuilt=<0|1>`. Cached summaries follow the fingerprint
//! transition: an insert batch whose graph has a warm **weak** summary is
//! *patched* (`core::incremental` replays the delta through the clique
//! union–find and re-keys the cached artifact, byte-identical to a fresh
//! build) instead of rebuilt; deletes and the other summary kinds fall
//! back to dropping the stale entry, and the next `SUMMARIZE` rebuilds.
//! `STATS` exposes the accounting — `updates` (batches applied),
//! `patches` (transitions served by patching), `patch_fallbacks`
//! (transitions that had to rebuild) — and the invariant `builds ==
//! patch_fallbacks + misses` holds at all times: every build is either a
//! plain cache miss or an update that could not be patched. The
//! `update_serving` bench group and `load_driver --update-mix` exercise
//! this path under load.
//!
//! The server is **event-driven**: one thread multiplexes every
//! connection over a `poll(2)` readiness loop (the workspace `polling`
//! shim) with buffered partial-line reads and resumable partial writes,
//! so thousands of idle keep-alive clients cost one fd and a small state
//! struct each — no thread per connection, no busy-spin. Microsecond
//! verbs (`PING`, `STATS`, `QUERY`, `EVICT`, `QUIT`) are answered inline
//! on the event thread; the seconds-scale ones (`LOAD`, cold
//! `SUMMARIZE`, `UPDATE`) are handed to a bounded executor so a cold
//! build or graph mutation never stalls keep-alive traffic. That makes `--workers N` (default:
//! max(threads, 4)) the width of the *executor* — how many heavy
//! requests may run at once — **not** a cap on connections. `--threads
//! N` still bounds build/bulk-load parallelism exactly as it does for
//! `summarize`, and `--engine threaded` swaps in the old
//! thread-per-connection pool (where `--workers` *is* the connection
//! cap) as a comparison baseline for `load_driver --ramp`.
//!
//! `QUERY` is the paper's intended payoff turned into a serving verb: it
//! evaluates a BGP (paper notation, embedded whitespace welcome) against
//! the warm store with **summary-based pruning** — the query is first
//! relaxed to the fragment every quotient summary preserves
//! ([`rdf_query::empty_on_summary`]) and checked as one ASK on a cached
//! summary; *empty on the summary ⇒ empty on the graph*, so provably
//! empty answers never touch the graph join (`pruned=1` on the status
//! line). Non-empty answers run in the order of a static plan whose
//! cardinality estimates are derived from the same summary
//! ([`rdfsum_core::SummaryCardinality`]). The summary kind is chosen
//! among already-cached kinds for the graph's fingerprint (falling back
//! to weak), so pruning never costs a summary rebuild in the warm
//! regime. The body is tab-separated: a column-name header plus one line
//! per row for SELECT, a bare `true`/`false` for ASK.
//!
//! **Warm restarts.** `--persist-dir DIR` makes the summary cache survive
//! the process: every built (or update-carried) artifact is also written
//! to `DIR/<fingerprint>-<kind>.sum` — a versioned, checksummed binary
//! envelope ([`rdfsum_core::persist`]) embedding the summary graph as an
//! `rdf_store::snapshot` v2 image — via write-to-temp + atomic rename. A
//! cache miss probes the directory before building; a verified artifact
//! for the same content fingerprint installs as a **hit** (counted in
//! `persist_hits` as well as `hits`), so a killed-and-restarted server
//! answers its first `SUMMARIZE` byte-identical to the cold build with
//! `builds` still at 0, and the CI-pinned invariant `builds ==
//! patch_fallbacks + misses` keeps holding. Any decode problem —
//! truncation, bit flips, wrong version, wrong checksum, an artifact for
//! other content — degrades to a plain miss: the summary is rebuilt,
//! re-persisted over the damage, and the client never sees an error.
//! `EVICT` unlinks the graph's on-disk slots (unless another resident
//! graph shares the content), `EVICT *` sweeps every `*.sum` file, and
//! `UPDATE` re-keys the slots to the post-batch fingerprint. `STATS`
//! reports `persist_hits` and `persist_writes`; snapshot v1 files still
//! load behind the version gate (minted terms degrade to plain IRIs
//! there — v2 keeps their symbolic keys).
//!
//! `rdfsummary client ADDR REQUEST…` sends one request line and prints
//! the response (status to stderr, body to stdout) for scripting:
//!
//! ```text
//! rdfsummary serve --addr 127.0.0.1:7878 --threads 4 &
//! rdfsummary client 127.0.0.1:7878 LOAD /data/bsbm.nt
//! rdfsummary client 127.0.0.1:7878 SUMMARIZE w /data/bsbm.nt > weak.nt
//! rdfsummary client 127.0.0.1:7878 QUERY /data/bsbm.nt 'q(?x) :- ?x a <http://bsbm.example.org/vocabulary/Offer>, ?x <http://bsbm.example.org/vocabulary/price> ?y'
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rdf_io;
pub use rdf_model;
pub use rdf_query;
pub use rdf_schema;
pub use rdf_store;
pub use rdfsum_core;
pub use rdfsum_server;
pub use rdfsum_workloads;

/// The most common imports, bundled.
pub mod prelude {
    pub use rdf_io::{load_path, parse_graph, save_path, to_dot, write_graph, DotOptions};
    pub use rdf_model::{Graph, GraphStats, PrefixMap, Term, TermId, Triple};
    pub use rdf_query::{compile, parse_query, Evaluator, QuerySpec};
    pub use rdf_schema::{saturate, Schema};
    pub use rdf_store::{TriplePattern, TripleStore};
    pub use rdfsum_core::{
        summarize, summarize_all, summarize_with, Summary, SummaryKind, SummaryStats,
    };
    pub use rdfsum_workloads::{BsbmConfig, LubmConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let g = rdfsum_core::fixtures::sample_graph();
        let all = summarize_all(&g);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].kind, SummaryKind::Weak);
        let _stats: SummaryStats = all[0].stats();
    }
}
