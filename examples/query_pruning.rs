//! Query pruning: the paper's query-optimization use case.
//!
//! Representativeness (Prop. 1) says `q(G∞) ≠ ∅ ⇒ q(H∞_G) ≠ ∅`. Its
//! contrapositive is an optimizer's static analysis: **if a query is empty
//! on the (tiny, saturated) summary, skip evaluating it on the graph
//! entirely.** This example measures how often that fires on a mixed
//! workload and how much evaluation work it saves.
//!
//! ```text
//! cargo run --release --example query_pruning
//! ```

use rdfsummary::prelude::*;
use rdfsummary::rdf_query::{sample_rbgp_queries, SpecTerm, WorkloadConfig};
use std::time::Instant;

fn main() {
    let graph = rdfsum_workloads::generate_bsbm(&BsbmConfig::with_products(300));
    let store = TripleStore::new(graph.clone());
    println!("graph: {} triples", graph.len());

    // A mixed workload: half sampled (guaranteed non-empty), half mutated
    // to reference property combinations that do not exist.
    let mut queries = sample_rbgp_queries(
        &store,
        &WorkloadConfig {
            queries: 40,
            patterns_per_query: 3,
            seed: 0x9A,
            ..Default::default()
        },
    );
    let sampled = queries.len();
    for i in 0..sampled {
        let mut dead = queries[i].clone();
        // Append a pattern over a property that exists nowhere: the query
        // provably has no answers.
        dead.body.push(rdfsummary::rdf_query::TriplePatternSpec {
            s: SpecTerm::var("zz"),
            p: SpecTerm::iri("http://bsbm.example.org/vocabulary/discontinuedSince"),
            o: SpecTerm::var("ww"),
        });
        queries.push(dead);
    }
    println!(
        "workload: {} queries ({} satisfiable, {} dead)",
        queries.len(),
        sampled,
        sampled
    );

    // Build the weak summary once (offline, like an index).
    let t0 = Instant::now();
    let summary = summarize(&graph, SummaryKind::Weak);
    let sat_summary = saturate(&summary.graph);
    let summary_store = TripleStore::new(sat_summary);
    println!(
        "weak summary: {} edges, built in {:.3}s",
        summary.graph.len(),
        t0.elapsed().as_secs_f64()
    );

    // Pass 1: evaluate everything directly on the graph.
    let ev = Evaluator::new(&store);
    let t0 = Instant::now();
    let mut nonempty_direct = 0;
    for q in &queries {
        let cq = compile(q, store.graph()).unwrap();
        if ev.ask(&cq) {
            nonempty_direct += 1;
        }
    }
    let direct = t0.elapsed().as_secs_f64();

    // Pass 2: prune through the summary first.
    let sev = Evaluator::new(&summary_store);
    let t0 = Instant::now();
    let mut pruned = 0;
    let mut nonempty_pruned_path = 0;
    for q in &queries {
        let on_summary = compile(q, summary_store.graph())
            .map(|cq| sev.ask(&cq))
            .unwrap_or(false);
        if !on_summary {
            pruned += 1; // provably empty on G — skip it
            continue;
        }
        let cq = compile(q, store.graph()).unwrap();
        if ev.ask(&cq) {
            nonempty_pruned_path += 1;
        }
    }
    let with_pruning = t0.elapsed().as_secs_f64();

    println!("\ndirect evaluation:   {nonempty_direct:>3} non-empty, {direct:.4}s");
    println!(
        "with summary pruning: {nonempty_pruned_path:>3} non-empty, {pruned} pruned, {with_pruning:.4}s"
    );
    assert_eq!(
        nonempty_direct, nonempty_pruned_path,
        "pruning must be sound"
    );
    println!(
        "\npruning was sound (identical answers) and skipped {}% of graph evaluations",
        pruned * 100 / queries.len()
    );
}
