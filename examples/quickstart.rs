//! Quickstart: load an RDF graph, build all four summaries, inspect them.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rdfsummary::prelude::*;

fn main() {
    // A small library dataset, in N-Triples (the paper's input format).
    let ntriples = r#"
<http://ex/book1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Book> .
<http://ex/book1> <http://ex/author> <http://ex/alice> .
<http://ex/book1> <http://ex/title> "Systems of the World" .
<http://ex/book2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Book> .
<http://ex/book2> <http://ex/author> <http://ex/bob> .
<http://ex/book2> <http://ex/title> "Summaries, Vol. 2" .
<http://ex/book2> <http://ex/editor> <http://ex/carol> .
<http://ex/journal1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Journal> .
<http://ex/journal1> <http://ex/title> "Graph Quarterly" .
<http://ex/journal1> <http://ex/editor> <http://ex/carol> .
<http://ex/alice> <http://ex/reviewed> <http://ex/book2> .
<http://ex/Book> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Publication> .
"#;
    let graph = parse_graph(ntriples).expect("valid N-Triples");
    println!(
        "input: {} triples ({} data, {} type, {} schema)\n",
        graph.len(),
        graph.data().len(),
        graph.types().len(),
        graph.schema().len()
    );

    // Build the four summaries of the paper.
    for summary in summarize_all(&graph) {
        let st = summary.stats();
        println!(
            "{:>2} summary: {:>2} nodes ({} data + {} class), {:>2} edges ({} data + {} type + {} schema)",
            summary.kind,
            st.all_nodes,
            st.data_nodes,
            st.class_nodes,
            st.all_edges,
            st.data_edges,
            st.type_edges,
            st.schema_edges,
        );
    }

    // The weak summary in N-Triples — it is just another RDF graph.
    let weak = summarize(&graph, SummaryKind::Weak);
    println!("\nweak summary triples:");
    print!("{}", write_graph(&weak.graph));

    // Who is represented where?
    let alice = graph.dict().lookup(&Term::iri("http://ex/alice")).unwrap();
    let bob = graph.dict().lookup(&Term::iri("http://ex/bob")).unwrap();
    println!(
        "\nalice and bob share a summary node: {}",
        weak.representative(alice) == weak.representative(bob)
    );
}
