//! The completeness shortcut (Props. 5 & 8): computing the summary of the
//! *saturated* graph `W_{G∞}` without ever saturating G — summarize, then
//! saturate the (tiny) summary, then re-summarize.
//!
//! "This property is important, as it gives a mean to compute W_{G∞}
//! without saturating G, but only summarizing G, then saturating the
//! smaller (typically by several orders of magnitude) W_G." (§4.1)
//!
//! ```text
//! cargo run --release --example saturation_shortcut
//! ```

use rdfsummary::prelude::*;
use rdfsummary::rdfsum_core::summary_isomorphic;
use std::time::Instant;

fn main() {
    // LUBM-like data: a class hierarchy, subproperties, domains and
    // ranges, so saturation does real work.
    let graph = rdfsum_workloads::generate_lubm(&LubmConfig {
        universities: 4,
        ..Default::default()
    });
    println!(
        "G: {} triples ({} schema)",
        graph.len(),
        graph.schema().len()
    );

    // The direct route: saturate G (expensive), then summarize.
    let t0 = Instant::now();
    let g_inf = saturate(&graph);
    let direct = summarize(&g_inf, SummaryKind::Weak);
    let t_direct = t0.elapsed().as_secs_f64();
    println!(
        "\ndirect:   G∞ has {} triples (+{}), W(G∞) has {} edges   [{t_direct:.4}s]",
        g_inf.len(),
        g_inf.len() - graph.len(),
        direct.graph.len()
    );

    // The shortcut: summarize G, saturate the summary, re-summarize.
    let t0 = Instant::now();
    let w = summarize(&graph, SummaryKind::Weak);
    let w_inf = saturate(&w.graph);
    let shortcut = summarize(&w_inf, SummaryKind::Weak);
    let t_shortcut = t0.elapsed().as_secs_f64();
    println!(
        "shortcut: W(G) has {} edges, (W(G))∞ has {}, W((W(G))∞) has {} edges   [{t_shortcut:.4}s]",
        w.graph.len(),
        w_inf.len(),
        shortcut.graph.len()
    );

    let same = summary_isomorphic(&direct.graph, &shortcut.graph);
    println!("\nW(G∞) == W((W(G))∞): {same}   (Proposition 5)");
    println!("speedup: {:.1}x", t_direct / t_shortcut.max(1e-9));
    assert!(same);

    // The same shortcut is wrong for typed summaries (Prop. 7): show it.
    let fig8 = rdfsummary::rdfsum_core::fixtures::figure8_graph();
    let check = rdfsummary::rdfsum_core::completeness_check(&fig8, SummaryKind::TypedWeak);
    println!(
        "\ntyped-weak on Figure 8's counter-example: completeness holds = {} (Prop. 7 says it must not)",
        check.holds
    );
    assert!(!check.holds);
}
