//! Dataset exploration: the paper's first motivating use case — "help an
//! RDF application designer get acquainted with a new dataset".
//!
//! Generates a BSBM-like dataset (stand-in for a dataset you just
//! received), summarizes it, prints a compact schema-like report, and
//! exports DOT renderings of the summaries.
//!
//! ```text
//! cargo run --release --example explore_dataset
//! dot -Tpdf target/weak_summary.dot -o weak.pdf   # if graphviz is installed
//! ```

use rdfsummary::prelude::*;
use rdfsummary::rdfsum_core::naming::display_label;

fn main() {
    let graph = rdfsum_workloads::generate_bsbm(&BsbmConfig::with_products(200));
    println!(
        "unknown dataset: {} triples, {} nodes — too big to eyeball\n",
        graph.len(),
        GraphStats::of(&graph).nodes
    );

    // The weak summary is the coarsest overview: one edge per property.
    let weak = summarize(&graph, SummaryKind::Weak);
    println!(
        "weak summary: {} nodes, {} edges — readable at a glance",
        weak.stats().all_nodes,
        weak.stats().all_edges
    );

    // Print the summary as a property map: which "kinds" of entities exist
    // and how they connect.
    let prefixes = {
        let mut p = PrefixMap::with_defaults();
        p.insert("bsbm", rdfsum_workloads::bsbm::BSBM_NS);
        p.insert("inst", rdfsum_workloads::bsbm::INST_NS);
        p.insert("dc", rdfsum_workloads::bsbm::DC_NS);
        p.insert("rev", rdfsum_workloads::bsbm::REV_NS);
        p
    };
    println!("\n-- entity kinds (summary nodes) and their extents --");
    let mut nodes: Vec<TermId> = weak.graph.data_nodes().into_iter().collect();
    nodes.sort_unstable();
    for n in nodes {
        let term = weak.graph.dict().decode(n);
        let uri = match term.as_iri() {
            Some(iri) => iri.to_string(),
            None => term.to_string(),
        };
        let extent = weak.extent(n).len();
        if extent > 0 {
            println!(
                "  {:<55} represents {:>6} resources",
                display_label(&uri),
                extent
            );
        }
    }

    println!("\n-- connections (one line per distinct property) --");
    for t in weak.graph.data() {
        let lbl = |id: TermId| -> String {
            let term = weak.graph.dict().decode(id);
            match term.as_iri() {
                Some(iri) => display_label(&prefixes.compact(iri)),
                None => term.to_string(),
            }
        };
        println!("  {} --{}--> {}", lbl(t.s), lbl(t.p), lbl(t.o));
    }

    // Export DOT files for the visual summary (the paper's project page
    // shows exactly such renderings).
    std::fs::create_dir_all("target").ok();
    for kind in [SummaryKind::Weak, SummaryKind::TypedWeak] {
        let s = summarize(&graph, kind);
        let dot = to_dot(
            &s.graph,
            &DotOptions {
                name: format!("{kind}_summary"),
                prefixes: prefixes.clone(),
                include_schema: false,
            },
        );
        let path = format!("target/{}_summary.dot", kind.notation().to_lowercase());
        std::fs::write(&path, dot).expect("write dot file");
        println!("\nwrote {path}");
    }
}
